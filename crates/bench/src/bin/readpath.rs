//! **readpath** — latched vs optimistic point-read path on the read-mostly
//! preset (95% point reads / 5% updates, uniform keys, warm cache).
//!
//! ```sh
//! cargo run --release -p lr-bench --bin readpath
//! LR_THREADS=4 LR_READS=40000 LR_KEYS=20000 \
//!     cargo run --release -p lr-bench --bin readpath
//! ```
//!
//! Runs the same workload twice — `EngineConfig::optimistic_reads` off
//! (every read takes the shared table latch plus per-frame read latches)
//! and on (seqlock-validated OLC descent, latched fallback) — and reports
//! per-mode committed read throughput and latency quantiles as JSON lines:
//!
//! ```json
//! {"bench":"readpath","mode":"latched","threads":4,"reads":40000,...}
//! {"bench":"readpath","mode":"optimistic",...}
//! ```
//!
//! **CI gate:** exits nonzero if optimistic point-read throughput falls
//! below the latched baseline (scaled by `LR_READPATH_MARGIN`, default
//! 1.0 — strict) — the acceptance criterion that the latch-free path is a
//! win, not a regression, on its target workload.

use lr_core::{Engine, EngineConfig, Session, DEFAULT_TABLE};
use lr_obs::{BenchSummary, Json};
use lr_workload::{KeyDist, OpMix, TxnGenerator, WorkloadSpec};
use std::time::Instant;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

struct ModeReport {
    reads: u64,
    updates: u64,
    wall_s: f64,
    reads_per_sec: f64,
    p50_ns: u64,
    p99_ns: u64,
    max_ns: u64,
    optimistic_point_reads: u64,
    read_fallbacks: u64,
    validation_failures: u64,
    restart_hist: lr_common::Histogram,
}

/// Render a per-attempt restart histogram (`bucket lower bound:count`,
/// power-of-two buckets) — the contention tail a mean restarts-per-op
/// number hides.
fn restart_buckets(h: &lr_common::Histogram) -> String {
    let parts: Vec<String> =
        h.nonzero_buckets().iter().map(|(lo, c)| format!("{lo}:{c}")).collect();
    if parts.is_empty() {
        "(empty)".to_string()
    } else {
        parts.join(" ")
    }
}

/// One measured run: `threads` sessions over the read-mostly mix, timing
/// every point read individually.
fn run_mode(optimistic: bool, threads: usize, reads_target: u64, key_space: u64) -> ModeReport {
    let engine = Engine::build(EngineConfig {
        initial_rows: key_space,
        pool_pages: (key_space / 8).max(1_024) as usize,
        io_model: lr_common::IoModel::zero(),
        optimistic_reads: optimistic,
        ..EngineConfig::default()
    })
    .expect("engine build")
    .into_shared();

    // Warm the cache: one full latched scan pulls every leaf and internal
    // page in, so both modes measure the in-memory read path, not device
    // misses.
    let warm = engine.scan_range(DEFAULT_TABLE, 0, u64::MAX).expect("warm scan");
    assert_eq!(warm.len() as u64, key_space, "warm scan saw the whole table");

    let per_thread = reads_target / threads as u64;
    let start = Instant::now();
    let shards: Vec<(u64, u64, lr_common::Histogram)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let mut session: Session = Engine::session(&engine);
                let spec = WorkloadSpec {
                    key_space,
                    txn_ops: 10,
                    mix: OpMix { update_pct: 5, read_pct: 95, insert_pct: 0, delete_pct: 0 },
                    dist: KeyDist::Uniform,
                    value_size: 100,
                    seed: 42 + t as u64,
                };
                s.spawn(move || {
                    let mut gen = TxnGenerator::new_with_insert_band(spec, t as u64 + 1);
                    let mut hist = lr_common::Histogram::new();
                    let mut reads = 0u64;
                    let mut updates = 0u64;
                    while reads < per_thread {
                        for op in gen.next_txn() {
                            match op {
                                lr_workload::Op::Read { key } => {
                                    let t0 = Instant::now();
                                    let v = session.read(DEFAULT_TABLE, key).expect("read");
                                    hist.record(t0.elapsed().as_nanos() as u64);
                                    assert!(v.is_some(), "loaded key {key} must exist");
                                    reads += 1;
                                }
                                lr_workload::Op::Update { key, value } => {
                                    session
                                        .run_txn(10_000, |s| {
                                            s.update_in(DEFAULT_TABLE, key, value.clone())
                                        })
                                        .expect("update");
                                    updates += 1;
                                }
                                _ => {}
                            }
                        }
                    }
                    (reads, updates, hist)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("reader thread panicked")).collect()
    });
    let wall = start.elapsed();

    let mut hist = lr_common::Histogram::new();
    let mut reads = 0u64;
    let mut updates = 0u64;
    for (r, u, h) in &shards {
        reads += r;
        updates += u;
        hist.merge(h);
    }
    let stats = engine.stats();
    engine.tc().locks().assert_no_leaks();
    ModeReport {
        reads,
        updates,
        wall_s: wall.as_secs_f64(),
        reads_per_sec: reads as f64 / wall.as_secs_f64().max(1e-9),
        p50_ns: hist.quantile(0.50),
        p99_ns: hist.quantile(0.99),
        max_ns: hist.max(),
        optimistic_point_reads: stats.optimistic_point_reads,
        read_fallbacks: stats.read_fallbacks,
        validation_failures: stats.optimistic_validation_failures,
        restart_hist: stats.read_restart_hist,
    }
}

fn emit(mode: &str, threads: usize, r: &ModeReport) {
    // The read-path A/B compares the B-tree DC's OLC descent against its
    // latched path; the backend tag keeps harvested JSON lines
    // attributable once more backends grow read benches.
    println!(
        "{{\"bench\":\"readpath\",\"backend\":\"btree\",\"mode\":\"{mode}\",\"threads\":{threads},\
         \"reads\":{},\"updates\":{},\"wall_s\":{:.3},\"reads_per_sec\":{:.0},\
         \"p50_ns\":{},\"p99_ns\":{},\"max_ns\":{},\
         \"optimistic_point_reads\":{},\"read_fallbacks\":{},\
         \"validation_failures\":{}}}",
        r.reads,
        r.updates,
        r.wall_s,
        r.reads_per_sec,
        r.p50_ns,
        r.p99_ns,
        r.max_ns,
        r.optimistic_point_reads,
        r.read_fallbacks,
        r.validation_failures,
    );
    eprintln!(
        "  {mode} read-restart distribution: {} descents, mean {:.4} restarts, \
         max {}, buckets [{}]",
        r.restart_hist.count(),
        r.restart_hist.mean(),
        r.restart_hist.max(),
        restart_buckets(&r.restart_hist),
    );
}

/// The same per-mode measurements as the JSON line, as a summary point.
fn point(mode: &str, threads: usize, r: &ModeReport) -> Json {
    Json::obj()
        .with("backend", Json::from("btree"))
        .with("mode", Json::from(mode))
        .with("threads", Json::from(threads as u64))
        .with("reads", Json::from(r.reads))
        .with("updates", Json::from(r.updates))
        .with("wall_s", Json::from(r.wall_s))
        .with("reads_per_sec", Json::from(r.reads_per_sec))
        .with("p50_ns", Json::from(r.p50_ns))
        .with("p99_ns", Json::from(r.p99_ns))
        .with("max_ns", Json::from(r.max_ns))
        .with("optimistic_point_reads", Json::from(r.optimistic_point_reads))
        .with("read_fallbacks", Json::from(r.read_fallbacks))
        .with("validation_failures", Json::from(r.validation_failures))
}

fn main() {
    let threads = env_u64("LR_THREADS", 4) as usize;
    let reads = env_u64("LR_READS", 40_000);
    let key_space = env_u64("LR_KEYS", 20_000);
    let margin = env_f64("LR_READPATH_MARGIN", 1.0);

    let mut summary = BenchSummary::new("readpath");
    summary.config("threads", Json::from(threads as u64));
    summary.config("reads", Json::from(reads));
    summary.config("keys", Json::from(key_space));
    summary.config("margin", Json::from(margin));

    eprintln!(
        "readpath: read-mostly preset (95/5), {threads} thread(s), \
         ~{reads} timed point reads per mode, {key_space} keys, warm cache"
    );

    let latched = run_mode(false, threads, reads, key_space);
    assert_eq!(
        latched.optimistic_point_reads, 0,
        "LR_READ_OPTIMISTIC off must not touch the optimistic path"
    );
    emit("latched", threads, &latched);
    summary.point(point("latched", threads, &latched));

    let optimistic = run_mode(true, threads, reads, key_space);
    emit("optimistic", threads, &optimistic);
    summary.point(point("optimistic", threads, &optimistic));

    assert!(
        optimistic.optimistic_point_reads > 0,
        "optimistic mode never validated a single read — the path is dead"
    );

    let speedup = optimistic.reads_per_sec / latched.reads_per_sec.max(1e-9);
    eprintln!(
        "readpath: optimistic {:.0} reads/s vs latched {:.0} reads/s ({speedup:.2}x), \
         p99 {} ns vs {} ns, {} fallbacks, {} validation failures",
        optimistic.reads_per_sec,
        latched.reads_per_sec,
        optimistic.p99_ns,
        latched.p99_ns,
        optimistic.read_fallbacks,
        optimistic.validation_failures,
    );
    let pass = optimistic.reads_per_sec >= latched.reads_per_sec * margin;
    summary.gate(
        Json::obj()
            .with("gate", Json::from("readpath_margin"))
            .with("speedup", Json::from(speedup))
            .with("margin", Json::from(margin))
            .with("pass", Json::from(pass)),
    );
    match summary.write() {
        Ok(path) => eprintln!("summary: {}", path.display()),
        Err(e) => eprintln!("warning: could not write bench summary: {e}"),
    }
    if !pass {
        eprintln!(
            "FAIL: optimistic point-read throughput below the latched \
             baseline (margin {margin})"
        );
        std::process::exit(1);
    }
    eprintln!("PASS: optimistic point reads at or above the latched baseline");
}
