//! **Figure 3 (Appendix C)** — redo time vs checkpoint interval, at the
//! 512MB-equivalent cache: ci, 5ci and 10ci.
//!
//! ```sh
//! cargo run --release -p lr-bench --bin fig3
//! ```
//!
//! Paper shape: Log0 grows linearly with the interval; Log1/SQL1 roughly
//! double at 5ci (log pages x5 but the DPT grows sub-linearly); Log2/SQL2
//! are affected only modestly (~1.2x) because prefetching gains value as
//! the DPT grows.

use lr_bench::prelude::*;

fn main() {
    let preset = preset_from_env();
    let methods = RecoveryMethod::paper_five();
    // The paper runs this at one representative cache size (we use the
    // 512MB-equivalent entry of the sweep).
    let (label, pool_pages) = preset.cache_sweep()[3];
    println!(
        "Figure 3: redo time (simulated ms) vs checkpoint interval — preset {preset:?}, cache {label}\n"
    );

    let mut table = Table::new(&["ci", "Log0", "Log1", "SQL1", "Log2", "SQL2"]);
    let mut csv = Table::new(&["ci_factor", "method", "redo_ms", "dpt", "log_pages"]);

    for ci_factor in [1u64, 5, 10] {
        let mut cell = Cell::new(preset, label, pool_pages, EXPERIMENT_SEED);
        cell.ci_factor = ci_factor;
        let run = CellRun::prepare(&cell);
        let mut row = vec![format!("{ci_factor}x")];
        for method in methods {
            let r = run.recover_with(method);
            row.push(format!("{:.1}", r.report.redo_ms()));
            csv.row(vec![
                ci_factor.to_string(),
                method.name().to_string(),
                format!("{:.1}", r.report.redo_ms()),
                r.report.breakdown.dpt_size.to_string(),
                r.report.log_pages_in_window.to_string(),
            ]);
        }
        table.row(row);
        eprintln!("  finished ci factor {ci_factor}x");
    }

    println!("{}", table.render());
    println!("CSV:\n{}", csv.to_csv());
    println!("(log scale in the paper; compare row-over-row growth factors)");
}
