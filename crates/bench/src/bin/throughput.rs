//! **Concurrent throughput** — committed transactions per second vs
//! session (thread) count, on the §5.2 update workload.
//!
//! ```sh
//! cargo run --release -p lr-bench --bin throughput
//! LR_THREADS=1,2,4,8 LR_TXNS=2000 LR_KEYS=100000 \
//!     cargo run --release -p lr-bench --bin throughput
//! ```
//!
//! This is the scaling check for the session-based engine: sharded key
//! locks, per-frame pool latches and group commit should make 4 sessions
//! commit strictly more per second than 1. The run also reports conflict
//! retries (no-wait policy) and log forces per commit (group-commit
//! effectiveness).

use lr_core::{Engine, EngineConfig, RecoveryMethod, RecoveryOptions};
use lr_obs::{BenchSummary, Json};
use lr_workload::report::Table;
use lr_workload::{run_concurrent, ConcurrentScenario};

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn env_f64(name: &str) -> Option<f64> {
    std::env::var(name).ok().and_then(|v| v.parse().ok())
}

/// `--help`: the knobs, plus every registered DC backend straight from the
/// registry — a newly registered backend shows up here without touching
/// this file.
fn print_help() {
    println!("throughput — committed txn/s vs session count (§5.2 update workload)\n");
    println!("env knobs:");
    println!("  LR_THREADS=1,2,4       thread counts to sweep");
    println!("  LR_TXNS=4000           transactions per point");
    println!("  LR_KEYS=50000          key space");
    println!("  LR_FORCE_US=50         modelled commit-force latency (µs)");
    println!("  LR_POOL_PAGES=...      pool frames (default keys/8, min 1024)");
    println!("  LR_MAINT=0|1           background maintenance service");
    println!("  LR_READ_OPTIMISTIC=0|1 latch-free OLC read path");
    println!("  LR_WRITE_OPTIMISTIC=0|1 OLC write-prepare path");
    println!("  LR_RECOVERY_WORKERS=N  post-run parallel-recovery smoke");
    println!("  LR_REMOTE_MARGIN=F     rerun the last point behind the message");
    println!("                         boundary (remote:<backend>) and require");
    println!("                         remote txn/s >= F * in-process txn/s");
    println!("  LR_OBS_MARGIN=F        rerun the last point with the trace journal");
    println!("                         enabled (but idle) and require traced");
    println!("                         txn/s >= F * untraced txn/s");
    println!("  LR_BENCH_OUT=dir       where BENCH_throughput.json lands (default .)");
    println!("  LR_BACKEND=<name>      data-component backend; registered:");
    for b in lr_core::backends() {
        println!("                           {}", b.name);
    }
}

fn env_list(name: &str, default: &[usize]) -> Vec<usize> {
    match std::env::var(name) {
        Ok(v) => {
            let parsed: Vec<usize> =
                v.split(',').filter_map(|s| s.trim().parse().ok()).filter(|&n| n > 0).collect();
            if parsed.is_empty() {
                eprintln!("warning: {name}={v:?} has no valid thread counts; using {default:?}");
                default.to_vec()
            } else {
                parsed
            }
        }
        Err(_) => default.to_vec(),
    }
}

fn main() {
    if std::env::args().any(|a| a == "--help" || a == "-h") {
        print_help();
        return;
    }
    let thread_counts = env_list("LR_THREADS", &[1, 2, 4]);
    let txns_total = env_u64("LR_TXNS", 4_000);
    let key_space = env_u64("LR_KEYS", 50_000);
    // Modelled device time of one log force. A single session pays it per
    // commit; concurrent sessions share it through group commit — which is
    // the scaling this bench demonstrates even on one core. Set 0 to
    // measure pure CPU-path scaling instead (needs multiple cores).
    let force_us = env_u64("LR_FORCE_US", 50);
    // Pool frames (default sized to hold the keyspace). Set it well below
    // keyspace/32 for a larger-than-cache run: every eviction then rides
    // the clock hand instead of a resident-set scan.
    let pool_pages = env_u64("LR_POOL_PAGES", (key_space / 8).max(1_024)) as usize;
    // LR_MAINT=1 hands checkpoints + lazywriter sweeps to the background
    // maintenance service (sessions never pay either inline).
    let maintenance = env_u64("LR_MAINT", 0) != 0;
    // LR_READ_OPTIMISTIC=0 forces every read through the latched path
    // (table latch + frame latches) for A/B runs against the default
    // latch-free OLC read path; see the `readpath` bin for the dedicated
    // read-mostly comparison.
    let optimistic_reads = env_u64("LR_READ_OPTIMISTIC", 1) != 0;
    // LR_WRITE_OPTIMISTIC=0 forces every write prepare through the
    // latched descent for A/B runs against the default OLC prepare
    // (optimistic descent + leaf-only write upgrade); see the `writepath`
    // bin for the dedicated update-heavy comparison.
    let optimistic_writes = env_u64("LR_WRITE_OPTIMISTIC", 1) != 0;
    // LR_RECOVERY_WORKERS>1 adds a crash + parallel-recovery smoke after
    // the last throughput point (serial vs partitioned redo on the same
    // crash image).
    let recovery_workers = RecoveryOptions::from_env().workers;
    // LR_BACKEND selects the data component (any registry name — see
    // `--help`); the same DcApi-shaped txn path runs either way, and every
    // JSON line below is tagged with the name so harvested results stay
    // attributable.
    let backend = std::env::var("LR_BACKEND").unwrap_or_else(|_| "btree".to_string());

    // Machine-readable run summary (shared schema across all benches);
    // written as BENCH_throughput.json even when a gate fails, so CI
    // artifacts always capture what was measured.
    let mut summary = BenchSummary::new("throughput");
    summary.config("backend", Json::from(backend.as_str()));
    summary.config("txns", Json::from(txns_total));
    summary.config("keys", Json::from(key_space));
    summary.config("force_us", Json::from(force_us));
    summary.config("pool_pages", Json::from(pool_pages as u64));
    summary.config("maintenance", Json::from(maintenance));
    summary.config("optimistic_reads", Json::from(optimistic_reads));
    summary.config("optimistic_writes", Json::from(optimistic_writes));

    println!("Concurrent throughput: §5.2 update workload, {key_space} keys,");
    println!("data component backend: {backend} (LR_BACKEND),");
    println!("{txns_total} transactions total per point (10 updates each), no-wait retry,");
    println!("commit force latency {force_us} µs (LR_FORCE_US; group commit shares it),");
    println!(
        "{pool_pages} pool frames (LR_POOL_PAGES), background maintenance {} (LR_MAINT),",
        if maintenance { "on" } else { "off" }
    );
    println!(
        "optimistic read path {} (LR_READ_OPTIMISTIC), \
         optimistic write path {} (LR_WRITE_OPTIMISTIC).\n",
        if optimistic_reads { "on" } else { "off" },
        if optimistic_writes { "on" } else { "off" }
    );

    let mut table = Table::new(&[
        "threads",
        "committed",
        "wall_ms",
        "txn/s",
        "retries",
        "log forces",
        "forces/commit",
    ]);
    let mut baseline: Option<f64> = None;
    let mut at_four: Option<f64> = None;
    let mut last_engine = None;
    let mut last_point: Option<(usize, f64)> = None;

    // One measurement point: a fresh engine (identical starting state for
    // every thread count) on the named backend, the §5.2 scenario, a lock
    // leak check. Shared with the LR_REMOTE_MARGIN and LR_OBS_MARGIN
    // reruns below; `trace` turns the journal on (enabled but never
    // drained — the overhead-gate configuration).
    let run_point = |threads: usize, backend: &str, trace: bool| {
        let engine = Engine::build(EngineConfig {
            initial_rows: key_space,
            pool_pages,
            io_model: lr_common::IoModel::zero(),
            commit_force_us: force_us,
            background_maintenance: maintenance,
            optimistic_reads,
            optimistic_writes,
            backend: backend.to_string(),
            trace,
            ..EngineConfig::default()
        })
        .expect("engine build")
        .into_shared();

        let scenario =
            ConcurrentScenario::paper_default(threads, txns_total / threads as u64, key_space);
        let report = run_concurrent(&engine, &scenario).expect("concurrent run");
        engine.tc().locks().assert_no_leaks();
        (report, engine)
    };

    for &threads in &thread_counts {
        let (report, engine) = run_point(threads, &backend, false);
        if maintenance {
            let s = engine.stats();
            eprintln!(
                "  maintenance at {threads} thread(s): {} bg checkpoints, {} cleaner pages, \
                 dirty {}/{} frames",
                s.background_checkpoints, s.cleaner_pages_flushed, s.dirty_pages, s.pool_capacity
            );
        }

        let tps = report.committed_per_sec();
        if threads == 1 {
            baseline = Some(tps);
        }
        if threads == 4 {
            at_four = Some(tps);
        }
        table.row(vec![
            threads.to_string(),
            report.committed.to_string(),
            format!("{:.1}", report.wall.as_secs_f64() * 1e3),
            format!("{tps:.0}"),
            report.conflict_retries.to_string(),
            report.log_forces.to_string(),
            format!("{:.2}", report.log_forces as f64 / report.committed.max(1) as f64),
        ]);
        eprintln!("  finished {threads} thread(s): {tps:.0} txn/s");
        println!(
            "{{\"bench\":\"throughput\",\"backend\":\"{backend}\",\"threads\":{threads},\
             \"committed\":{},\"wall_ms\":{:.1},\"txn_per_sec\":{tps:.0},\
             \"conflict_retries\":{},\"log_forces\":{}}}",
            report.committed,
            report.wall.as_secs_f64() * 1e3,
            report.conflict_retries,
            report.log_forces,
        );
        summary.point(
            Json::obj()
                .with("backend", Json::from(backend.as_str()))
                .with("threads", Json::from(threads as u64))
                .with("committed", Json::from(report.committed))
                .with("wall_ms", Json::from(report.wall.as_secs_f64() * 1e3))
                .with("txn_per_sec", Json::from(tps))
                .with("conflict_retries", Json::from(report.conflict_retries))
                .with("log_forces", Json::from(report.log_forces)),
        );
        last_engine = Some(engine);
        last_point = Some((threads, tps));
    }

    println!("{}", table.render());

    // LR_REMOTE_MARGIN=F: pair the swept backend with its cross-boundary
    // twin (add or strip the `remote:` prefix), rerun the last point on
    // the twin, and require proxied txn/s >= F * in-process txn/s — the
    // wire codec + dispatch tax on a loopback transport, measured on the
    // same workload. Works from either side: sweep `btree` and the gate
    // measures `remote:btree`, or sweep `remote:btree` and it measures
    // the in-process baseline.
    if let (Some(margin), Some((threads, main_tps))) = (env_f64("LR_REMOTE_MARGIN"), last_point) {
        let (twin, main_is_remote) = match backend.strip_prefix("remote:") {
            Some(inner) => (inner.to_string(), true),
            None => (format!("remote:{backend}"), false),
        };
        let (report, _engine) = run_point(threads, &twin, false);
        let twin_tps = report.committed_per_sec();
        let (inproc_tps, remote_tps) =
            if main_is_remote { (twin_tps, main_tps) } else { (main_tps, twin_tps) };
        let ratio = remote_tps / inproc_tps.max(1e-9);
        println!(
            "{{\"bench\":\"throughput\",\"backend\":\"{twin}\",\
             \"threads\":{threads},\"committed\":{},\"txn_per_sec\":{twin_tps:.0},\
             \"remote_ratio\":{ratio:.3}}}",
            report.committed,
        );
        println!(
            "message-boundary tax at {threads} thread(s): {inproc_tps:.0} txn/s in-process \
             vs {remote_tps:.0} txn/s proxied ({ratio:.2}x, margin {margin:.2})"
        );
        let pass = ratio >= margin;
        summary.gate(
            Json::obj()
                .with("gate", Json::from("remote_margin"))
                .with("threads", Json::from(threads as u64))
                .with("inproc_txn_per_sec", Json::from(inproc_tps))
                .with("remote_txn_per_sec", Json::from(remote_tps))
                .with("ratio", Json::from(ratio))
                .with("margin", Json::from(margin))
                .with("pass", Json::from(pass)),
        );
        if pass {
            println!("PASS: remote backend within margin");
        } else {
            println!("FAIL: remote throughput below {margin:.2}x of in-process");
            let _ = summary.write();
            std::process::exit(1);
        }
    }

    // LR_OBS_MARGIN=F: the tracing-overhead gate. Rerun the last point
    // with the trace journal enabled but idle (events are emitted into
    // the per-thread rings and never drained — the worst steady-state
    // cost a always-on journal imposes) and require traced txn/s >=
    // F * untraced txn/s. CI runs this at 0.95.
    if let (Some(margin), Some((threads, plain_tps))) = (env_f64("LR_OBS_MARGIN"), last_point) {
        let (report, engine) = run_point(threads, &backend, true);
        let traced_tps = report.committed_per_sec();
        let ratio = traced_tps / plain_tps.max(1e-9);
        let dropped = engine.trace().dropped_events();
        println!(
            "{{\"bench\":\"throughput\",\"backend\":\"{backend}\",\"threads\":{threads},\
             \"committed\":{},\"txn_per_sec\":{traced_tps:.0},\"traced\":true,\
             \"obs_ratio\":{ratio:.3},\"trace_dropped\":{dropped}}}",
            report.committed,
        );
        println!(
            "tracing overhead at {threads} thread(s): {plain_tps:.0} txn/s untraced vs \
             {traced_tps:.0} txn/s traced ({ratio:.2}x, margin {margin:.2}, {dropped} dropped)"
        );
        let pass = ratio >= margin;
        summary.gate(
            Json::obj()
                .with("gate", Json::from("obs_margin"))
                .with("threads", Json::from(threads as u64))
                .with("untraced_txn_per_sec", Json::from(plain_tps))
                .with("traced_txn_per_sec", Json::from(traced_tps))
                .with("trace_dropped", Json::from(dropped))
                .with("ratio", Json::from(ratio))
                .with("margin", Json::from(margin))
                .with("pass", Json::from(pass)),
        );
        if pass {
            println!("PASS: tracing overhead within margin");
        } else {
            println!("FAIL: traced throughput below {margin:.2}x of untraced");
            let _ = summary.write();
            std::process::exit(1);
        }
    }

    if recovery_workers > 1 {
        if let Some(engine) = last_engine {
            engine.crash();
            let serial = engine.fork_crashed().expect("fork crashed engine");
            let parallel = engine.fork_crashed().expect("fork crashed engine");
            let rs = serial.recover(RecoveryMethod::Log1).expect("serial recovery");
            let rp = parallel
                .recover_with(RecoveryMethod::Log1, RecoveryOptions::with_workers(recovery_workers))
                .expect("parallel recovery");
            assert_eq!(
                serial.scan_table(lr_core::DEFAULT_TABLE).unwrap(),
                parallel.scan_table(lr_core::DEFAULT_TABLE).unwrap(),
                "parallel recovery diverged from serial"
            );
            println!(
                "recovery smoke (Log1, LR_RECOVERY_WORKERS={recovery_workers}): serial redo \
                 {:.1} ms, parallel redo {:.1} ms, {} reapplied, skew {:.2}",
                rs.redo_ms(),
                rp.redo_ms(),
                rp.breakdown.ops_reapplied,
                rp.breakdown.partition_skew()
            );
        }
    }

    let mut failed = false;
    if let (Some(one), Some(four)) = (baseline, at_four) {
        let speedup = four / one;
        println!("4-thread speedup over 1 thread: {speedup:.2}x");
        let pass = four > one;
        summary.gate(
            Json::obj()
                .with("gate", Json::from("scaling"))
                .with("speedup_4_over_1", Json::from(speedup))
                .with("pass", Json::from(pass)),
        );
        if pass {
            println!("PASS: 4-thread committed-txn/s strictly above 1-thread");
        } else {
            println!("FAIL: no scaling — 4 threads at or below the single-session rate");
            failed = true;
        }
    }
    match summary.write() {
        Ok(path) => println!("summary: {}", path.display()),
        Err(e) => eprintln!("warning: could not write bench summary: {e}"),
    }
    if failed {
        std::process::exit(1);
    }
}
