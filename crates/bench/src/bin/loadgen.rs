//! **Server load generator** — N client connections against one
//! [`lr_server::Server`] over real loopback TCP, on a bank-transfer
//! workload whose invariant (total balance is constant) catches any
//! isolation or atomicity break the wire path could introduce.
//!
//! ```sh
//! cargo run --release -p lr-bench --bin loadgen
//! LR_CONNS=1,8 LR_TXNS=4000 LR_ACCOUNTS=2048 \
//!     cargo run --release -p lr-bench --bin loadgen
//! ```
//!
//! Each point starts a fresh engine + TCP server, connects the clients,
//! and runs transfer transactions (read-for-update two accounts, move a
//! few units, commit) with the client-side no-wait retry helper. Reported
//! per point: aggregate committed txn/s and per-connection p50/p99
//! latency. Three gates:
//!
//! * **scaling** — the widest connection count must commit at least
//!   `LR_SCALE_MARGIN`× (default 2×) the single-connection rate (group
//!   commit shares the modelled force latency across connections);
//! * **admission** — a cap-2 server must refuse the third connection with
//!   a typed `ServerBusy`, never a hang;
//! * **disconnect-abort** — a connection dropped mid-transaction must
//!   have its transaction aborted server-side so a fresh connection can
//!   immediately write the same keys.

use lr_common::Histogram;
use lr_core::{Engine, EngineConfig, DEFAULT_TABLE};
use lr_obs::{BenchSummary, Json};
use lr_server::{Client, Server, ServerConfig};
use lr_workload::report::Table;
use std::sync::{Arc, Barrier};
use std::time::Instant;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn env_list(name: &str, default: &[usize]) -> Vec<usize> {
    match std::env::var(name) {
        Ok(v) => {
            let parsed: Vec<usize> =
                v.split(',').filter_map(|s| s.trim().parse().ok()).filter(|&n| n > 0).collect();
            if parsed.is_empty() {
                eprintln!(
                    "warning: {name}={v:?} has no valid connection counts; using {default:?}"
                );
                default.to_vec()
            } else {
                parsed
            }
        }
        Err(_) => default.to_vec(),
    }
}

fn print_help() {
    println!("loadgen — N TCP client connections vs one server, bank-transfer workload\n");
    println!("env knobs:");
    println!("  LR_CONNS=1,8           connection counts to sweep");
    println!("  LR_TXNS=4000           transfer transactions per point (split across conns)");
    println!("  LR_ACCOUNTS=2048       bank accounts (keys)");
    println!("  LR_FORCE_US=400        modelled commit-force latency (µs; group commit shares it)");
    println!("  LR_SCALE_MARGIN=2.0    widest point must reach this multiple of 1-conn txn/s");
    println!("  LR_BENCH_OUT=dir       where BENCH_loadgen.json lands (default .)");
    println!("  LR_BACKEND=<name>      data-component backend; registered:");
    for b in lr_core::backends() {
        println!("                           {}", b.name);
    }
}

const INITIAL_BALANCE: u64 = 1_000;

fn balance_bytes(v: u64) -> Vec<u8> {
    v.to_le_bytes().to_vec()
}

fn read_balance(bytes: &[u8]) -> u64 {
    u64::from_le_bytes(bytes.try_into().expect("8-byte balance"))
}

/// Start a fresh engine + TCP server for one measurement point, with the
/// accounts seeded through the front door. The returned client (the
/// seeder) keeps one admission slot for invariant checks.
fn start_server(
    accounts: u64,
    force_us: u64,
    backend: &str,
    cap: usize,
) -> (Server, std::net::SocketAddr, Client) {
    let engine = Engine::build(EngineConfig {
        initial_rows: 0,
        pool_pages: ((accounts / 4).max(1_024)) as usize,
        io_model: lr_common::IoModel::zero(),
        commit_force_us: force_us,
        backend: backend.to_string(),
        ..EngineConfig::default()
    })
    .expect("engine build")
    .into_shared();
    let (server, addr) =
        Server::start_tcp(engine, ServerConfig { max_sessions: cap }).expect("server start");
    // Seed in batches: one giant transaction would make a single abort
    // undo the whole load.
    let mut seeder = Client::connect_tcp(addr).expect("seeder connect");
    for batch in (0..accounts).collect::<Vec<_>>().chunks(256) {
        let keys: Vec<u64> = batch.to_vec();
        seeder
            .run_txn(10, |c| {
                for &k in &keys {
                    c.insert(DEFAULT_TABLE, k, balance_bytes(INITIAL_BALANCE))?;
                }
                Ok(())
            })
            .expect("seed batch");
    }
    (server, addr, seeder)
}

/// Sum of all account balances, read through a client scan.
fn total_balance(client: &mut Client, accounts: u64) -> u64 {
    let rows = client.scan_range(DEFAULT_TABLE, 0, accounts - 1).expect("invariant scan");
    assert_eq!(rows.len() as u64, accounts, "an account vanished");
    rows.iter().map(|(_, v)| read_balance(v)).sum()
}

struct ConnReport {
    committed: u64,
    retries: u64,
    wall_s: f64,
    latency_us: Histogram,
}

/// One measurement point: `conns` clients, `txns` transfers split evenly.
fn run_point(
    addr: std::net::SocketAddr,
    conns: usize,
    txns: u64,
    accounts: u64,
) -> Vec<ConnReport> {
    let per_conn = (txns / conns as u64).max(1);
    let barrier = Arc::new(Barrier::new(conns));
    let threads: Vec<_> = (0..conns)
        .map(|i| {
            let barrier = barrier.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect_tcp(addr).expect("client connect");
                let mut rng = 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i as u64 + 1);
                let mut latency_us = Histogram::new();
                let mut retries = 0u64;
                barrier.wait();
                let started = Instant::now();
                for _ in 0..per_conn {
                    // Cheap xorshift — distinct streams per connection.
                    let mut next = || {
                        rng ^= rng << 13;
                        rng ^= rng >> 7;
                        rng ^= rng << 17;
                        rng
                    };
                    let from = next() % accounts;
                    let to = {
                        let t = next() % accounts;
                        if t == from {
                            (t + 1) % accounts
                        } else {
                            t
                        }
                    };
                    let amount = 1 + next() % 5;
                    let t0 = Instant::now();
                    let r = client
                        .run_txn(200, |c| {
                            let a = c
                                .read_for_update(DEFAULT_TABLE, from)?
                                .map(|v| read_balance(&v))
                                .expect("account exists");
                            let b = c
                                .read_for_update(DEFAULT_TABLE, to)?
                                .map(|v| read_balance(&v))
                                .expect("account exists");
                            let moved = amount.min(a);
                            c.update(DEFAULT_TABLE, from, balance_bytes(a - moved))?;
                            c.update(DEFAULT_TABLE, to, balance_bytes(b + moved))?;
                            Ok(())
                        })
                        .expect("transfer txn");
                    retries += r as u64;
                    latency_us.record(t0.elapsed().as_micros() as u64);
                }
                ConnReport {
                    committed: per_conn,
                    retries,
                    wall_s: started.elapsed().as_secs_f64(),
                    latency_us,
                }
            })
        })
        .collect();
    threads.into_iter().map(|t| t.join().expect("client thread")).collect()
}

/// Admission gate: a cap-2 server must refuse the third connection with a
/// typed ServerBusy carrying the occupancy.
fn admission_probe(summary: &mut BenchSummary) -> bool {
    let engine = Engine::build(EngineConfig {
        initial_rows: 16,
        pool_pages: 1_024,
        io_model: lr_common::IoModel::zero(),
        ..EngineConfig::default()
    })
    .expect("engine build")
    .into_shared();
    let (server, addr) =
        Server::start_tcp(engine, ServerConfig { max_sessions: 2 }).expect("server start");
    let _c1 = Client::connect_tcp(addr).expect("first connection");
    let _c2 = Client::connect_tcp(addr).expect("second connection");
    let third = Client::connect_tcp(addr);
    let rejected_typed = matches!(third, Err(lr_common::Error::ServerBusy { active: 2, cap: 2 }));
    let counted = server.stats().connections_rejected >= 1;
    let pass = rejected_typed && counted;
    println!(
        "admission probe: cap 2, third connection {} ({} rejection(s) counted)",
        if rejected_typed { "refused with typed ServerBusy" } else { "NOT refused correctly" },
        server.stats().connections_rejected,
    );
    summary.gate(
        Json::obj()
            .with("gate", Json::from("admission"))
            .with("cap", Json::from(2u64))
            .with("typed_rejection", Json::from(rejected_typed))
            .with("rejections_counted", Json::from(counted))
            .with("pass", Json::from(pass)),
    );
    pass
}

/// Disconnect gate: dropping a connection mid-transaction must abort it
/// server-side, leaving its keys writable by a fresh connection.
fn disconnect_probe(summary: &mut BenchSummary) -> bool {
    let (server, addr, mut seeder) = start_server(16, 0, "btree", 8);
    let mut doomed = Client::connect_tcp(addr).expect("doomed connection");
    doomed.begin().expect("begin");
    doomed.update(DEFAULT_TABLE, 5, balance_bytes(0)).expect("uncommitted write");
    drop(doomed); // vanish mid-transaction: the server must abort for us
                  // The abort runs on the handler thread as it tears down; the no-wait
                  // retry loop absorbs the race.
    seeder
        .run_txn(500, |c| c.update(DEFAULT_TABLE, 5, balance_bytes(INITIAL_BALANCE)))
        .expect("rewrite after disconnect");
    let rewritten = seeder.read(DEFAULT_TABLE, 5).expect("readback").expect("present");
    let aborted = server.stats().disconnect_aborts >= 1;
    let unharmed = read_balance(&rewritten) == INITIAL_BALANCE;
    server.engine().tc().locks().assert_no_leaks();
    let pass = aborted && unharmed;
    println!(
        "disconnect probe: mid-txn drop {} ({} disconnect abort(s) counted)",
        if pass { "aborted server-side, key immediately rewritable" } else { "FAILED" },
        server.stats().disconnect_aborts,
    );
    summary.gate(
        Json::obj()
            .with("gate", Json::from("disconnect_abort"))
            .with("disconnect_aborts", Json::from(server.stats().disconnect_aborts))
            .with("rewrite_ok", Json::from(unharmed))
            .with("pass", Json::from(pass)),
    );
    pass
}

fn main() {
    if std::env::args().any(|a| a == "--help" || a == "-h") {
        print_help();
        return;
    }
    let conn_counts = env_list("LR_CONNS", &[1, 8]);
    let txns = env_u64("LR_TXNS", 4_000);
    let accounts = env_u64("LR_ACCOUNTS", 2_048);
    // High enough that the modelled device force dominates a commit, so
    // the scaling gate measures group-commit sharing — the one lever that
    // scales with connection count even on a single core.
    let force_us = env_u64("LR_FORCE_US", 400);
    let margin = env_f64("LR_SCALE_MARGIN", 2.0);
    let backend = std::env::var("LR_BACKEND").unwrap_or_else(|_| "btree".to_string());

    let mut summary = BenchSummary::new("loadgen");
    summary.config("backend", Json::from(backend.as_str()));
    summary.config("txns", Json::from(txns));
    summary.config("accounts", Json::from(accounts));
    summary.config("force_us", Json::from(force_us));
    summary.config("scale_margin", Json::from(margin));

    println!("Server loadgen: bank-transfer workload over loopback TCP,");
    println!("{accounts} accounts, {txns} transfers per point (LR_TXNS, split across conns),");
    println!("commit force latency {force_us} µs (LR_FORCE_US; group commit shares it),");
    println!("backend {backend} (LR_BACKEND).\n");

    let mut table =
        Table::new(&["conns", "committed", "wall_ms", "txn/s", "retries", "p50_us", "p99_us"]);
    let mut first_rate: Option<f64> = None;
    let mut last: Option<(usize, f64)> = None;

    for &conns in &conn_counts {
        let (server, addr, mut seeder) = start_server(accounts, force_us, &backend, conns + 8);
        let reports = run_point(addr, conns, txns, accounts);

        let committed: u64 = reports.iter().map(|r| r.committed).sum();
        let retries: u64 = reports.iter().map(|r| r.retries).sum();
        let wall_s = reports.iter().map(|r| r.wall_s).fold(0.0f64, f64::max);
        let mut latency = Histogram::new();
        for r in &reports {
            latency.merge(&r.latency_us);
        }
        let rate = committed as f64 / wall_s.max(1e-9);
        let p50 = latency.quantile(0.5);
        let p99 = latency.quantile(0.99);

        // The invariant the wire path must not break: money moved, none
        // was created or destroyed.
        assert_eq!(
            total_balance(&mut seeder, accounts),
            accounts * INITIAL_BALANCE,
            "bank invariant broken at {conns} connection(s)"
        );
        server.engine().tc().locks().assert_no_leaks();
        let sstats = server.stats();
        assert_eq!(sstats.disconnect_aborts, 0, "no workload txn should die with its conn");

        if first_rate.is_none() {
            first_rate = Some(rate);
        }
        last = Some((conns, rate));
        table.row(vec![
            conns.to_string(),
            committed.to_string(),
            format!("{:.1}", wall_s * 1e3),
            format!("{rate:.0}"),
            retries.to_string(),
            p50.to_string(),
            p99.to_string(),
        ]);
        eprintln!("  finished {conns} connection(s): {rate:.0} txn/s");
        println!(
            "{{\"bench\":\"loadgen\",\"backend\":\"{backend}\",\"conns\":{conns},\
             \"committed\":{committed},\"wall_ms\":{:.1},\"txn_per_sec\":{rate:.0},\
             \"retries\":{retries},\"p50_us\":{p50},\"p99_us\":{p99}}}",
            wall_s * 1e3,
        );
        summary.point(
            Json::obj()
                .with("backend", Json::from(backend.as_str()))
                .with("conns", Json::from(conns as u64))
                .with("committed", Json::from(committed))
                .with("wall_ms", Json::from(wall_s * 1e3))
                .with("txn_per_sec", Json::from(rate))
                .with("retries", Json::from(retries))
                .with("p50_us", Json::from(p50))
                .with("p99_us", Json::from(p99)),
        );
    }
    println!("{}", table.render());

    let mut failed = false;

    // Scaling gate.
    if let (Some(one), Some((conns, wide))) = (first_rate, last) {
        if conns > 1 {
            let speedup = wide / one.max(1e-9);
            let pass = speedup >= margin;
            println!(
                "{conns}-connection speedup over 1: {speedup:.2}x (margin {margin:.2}): {}",
                if pass { "PASS" } else { "FAIL" }
            );
            summary.gate(
                Json::obj()
                    .with("gate", Json::from("scaling"))
                    .with("conns", Json::from(conns as u64))
                    .with("one_conn_txn_per_sec", Json::from(one))
                    .with("wide_txn_per_sec", Json::from(wide))
                    .with("speedup", Json::from(speedup))
                    .with("margin", Json::from(margin))
                    .with("pass", Json::from(pass)),
            );
            failed |= !pass;
        }
    }

    failed |= !admission_probe(&mut summary);
    failed |= !disconnect_probe(&mut summary);

    match summary.write() {
        Ok(path) => println!("summary: {}", path.display()),
        Err(e) => eprintln!("warning: could not write bench summary: {e}"),
    }
    if failed {
        std::process::exit(1);
    }
}
