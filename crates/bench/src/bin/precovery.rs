//! **Parallel recovery smoke** — serial vs partitioned redo wall-clock,
//! side-by-side on the same crash image (§5.1 methodology), plus the
//! spill_concurrent crash from the maintenance work.
//!
//! ```sh
//! cargo run --release -p lr-bench --bin precovery
//! LR_SCALE=smoke LR_RECOVERY_WORKERS=4 \
//!     cargo run --release -p lr-bench --bin precovery
//! ```
//!
//! Serial redo time is the clock delta of the single-threaded pass;
//! parallel redo time is the busiest worker's simulated busy time
//! (max-of-workers wall-clock; the dispatcher's scan is reported as the
//! separate `partition` phase). Because the screen/traversal cost moves
//! from serial `redo` into the parallel `partition` phase, the gate
//! compares the *whole* parallel redo pipeline — partition + redo +
//! merge — against the serial redo wall-clock: the bin exits non-zero if
//! any cell's parallel pipeline exceeds its serial redo. One JSON line
//! per cell feeds the perf trajectory.

use lr_bench::prelude::*;
use lr_core::{Engine, RecoveryOptions};
use lr_workload::{run_concurrent, spill_concurrent};

fn env_workers() -> usize {
    RecoveryOptions::from_env().workers.max(2)
}

struct JsonRow {
    preset: String,
    method: &'static str,
    redo_ms_serial: f64,
    redo_ms_parallel: f64,
    partition_ms: f64,
    total_ms_serial: f64,
    total_ms_parallel: f64,
    workers: usize,
    skew: f64,
    queue_stall_ms: f64,
}

impl JsonRow {
    fn emit(&self) {
        println!(
            "JSON {{\"preset\":\"{}\",\"method\":\"{}\",\"workers\":{},\
             \"redo_ms_serial\":{:.3},\"redo_ms_parallel\":{:.3},\"partition_ms\":{:.3},\
             \"total_ms_serial\":{:.3},\"total_ms_parallel\":{:.3},\"skew\":{:.3},\
             \"queue_stall_ms\":{:.3}}}",
            self.preset,
            self.method,
            self.workers,
            self.redo_ms_serial,
            self.redo_ms_parallel,
            self.partition_ms,
            self.total_ms_serial,
            self.total_ms_parallel,
            self.skew,
            self.queue_stall_ms,
        );
    }
}

fn main() {
    let preset = preset_from_env();
    let workers = env_workers();
    let methods = RecoveryMethod::paper_five();
    // One representative cache (the 512MB-equivalent sweep entry, as fig3).
    let (label, pool_pages) = preset.cache_sweep()[3];
    println!(
        "Parallel recovery smoke: preset {preset:?}, cache {label}, {workers} workers \
         (LR_RECOVERY_WORKERS)\n"
    );

    let mut table = Table::new(&[
        "method",
        "serial redo_ms",
        "parallel redo_ms",
        "pipeline_ms",
        "speedup",
        "skew",
        "reapplied s/p",
    ]);
    let mut failures = 0usize;
    // Parallel redo pipeline wall-clock: dispatcher scan + busiest worker
    // + shard merge — the apples-to-apples counterpart of serial redo_ms.
    let pipeline_ms =
        |b: &lr_common::RecoveryBreakdown| (b.partition_us + b.redo_us + b.merge_us) as f64 / 1e3;

    let cell = Cell::new(preset, label, pool_pages, EXPERIMENT_SEED);
    let run = CellRun::prepare(&cell);
    for method in methods {
        let serial = run.recover_with(method);
        let parallel = run.recover_with_workers(method, workers);
        let (s, p) = (serial.report.redo_ms(), parallel.report.redo_ms());
        let b = &parallel.report.breakdown;
        let pipe = pipeline_ms(b);
        if pipe > s {
            failures += 1;
        }
        table.row(vec![
            method.name().to_string(),
            format!("{s:.1}"),
            format!("{p:.1}"),
            format!("{pipe:.1}"),
            format!("{:.2}x", if pipe > 0.0 { s / pipe } else { f64::INFINITY }),
            format!("{:.2}", b.partition_skew()),
            format!(
                "{}/{}",
                serial.report.breakdown.ops_reapplied, parallel.report.breakdown.ops_reapplied
            ),
        ]);
        JsonRow {
            preset: format!("{preset:?}"),
            method: method.name(),
            redo_ms_serial: s,
            redo_ms_parallel: p,
            partition_ms: b.partition_us as f64 / 1e3,
            total_ms_serial: serial.report.total_ms(),
            total_ms_parallel: parallel.report.total_ms(),
            workers,
            skew: b.partition_skew(),
            queue_stall_ms: b.queue_stall_us as f64 / 1e3,
        }
        .emit();
        eprintln!("  finished {method}: serial {s:.1} ms, parallel {p:.1} ms");
    }
    println!("{}", table.render());

    // ---- spill preset: crash under eviction pressure, Log1 s/p ----
    let (mut cfg, scenario) = spill_concurrent(4, 60);
    // The spill preset runs untimed; give recovery the real device model
    // so the serial/parallel comparison measures actual simulated I/O.
    cfg.io_model = lr_common::IoModel::default();
    let engine = Engine::build(cfg).expect("spill engine").into_shared();
    run_concurrent(&engine, &scenario).expect("spill run");
    engine.crash();
    let serial_fork = engine.fork_crashed().expect("fork");
    let parallel_fork = engine.fork_crashed().expect("fork");
    let rs = serial_fork.recover(RecoveryMethod::Log1).expect("serial spill recovery");
    let rp = parallel_fork
        .recover_with(RecoveryMethod::Log1, RecoveryOptions::with_workers(workers))
        .expect("parallel spill recovery");
    assert_eq!(
        serial_fork.scan_table(lr_core::DEFAULT_TABLE).unwrap(),
        parallel_fork.scan_table(lr_core::DEFAULT_TABLE).unwrap(),
        "spill: parallel state diverged from serial"
    );
    let (s, p) = (rs.redo_ms(), rp.redo_ms());
    if pipeline_ms(&rp.breakdown) > s {
        failures += 1;
    }
    println!(
        "spill_concurrent Log1: serial redo {s:.1} ms, parallel redo {p:.1} ms, \
         pipeline {:.1} ms (skew {:.2})",
        pipeline_ms(&rp.breakdown),
        rp.breakdown.partition_skew()
    );
    JsonRow {
        preset: "spill_concurrent".to_string(),
        method: RecoveryMethod::Log1.name(),
        redo_ms_serial: s,
        redo_ms_parallel: p,
        partition_ms: rp.breakdown.partition_us as f64 / 1e3,
        total_ms_serial: rs.total_ms(),
        total_ms_parallel: rp.total_ms(),
        workers,
        skew: rp.breakdown.partition_skew(),
        queue_stall_ms: rp.breakdown.queue_stall_us as f64 / 1e3,
    }
    .emit();

    if failures > 0 {
        println!(
            "FAIL: {failures} cell(s) with parallel redo pipeline (partition+redo+merge) \
             above serial redo"
        );
        std::process::exit(1);
    }
    println!("PASS: parallel redo pipeline (partition+redo+merge) <= serial redo in every cell");
}
