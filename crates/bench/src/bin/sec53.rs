//! §5.3 narrative checks not tied to a figure: analysis share of recovery
//! time, index-stall share of redo, and the DPT's stall-IO reduction.
//!
//! ```sh
//! cargo run --release -p lr-bench --bin sec53
//! ```

use lr_bench::prelude::*;

fn main() {
    let preset = preset_from_env();
    println!("§5.3 narrative numbers — preset {preset:?}\n");
    let mut table = Table::new(&[
        "cache",
        "analysis% (Log1)",
        "idx-stall% of redo (Log1)",
        "fetch drop Log0->Log1 (%)",
    ]);
    let cells = sweep_cells(preset);
    for cell in [&cells[0], &cells[3], &cells[5]] {
        let run = CellRun::prepare(cell);
        let log0 = run.recover_with(RecoveryMethod::Log0);
        let log1 = run.recover_with(RecoveryMethod::Log1);
        let b = &log1.report.breakdown;
        let analysis_pct = 100.0 * (b.analysis_us + b.smo_redo_us) as f64 / b.total_us() as f64;
        let idx_pct = 100.0 * b.index_stall_us as f64 / b.redo_us.max(1) as f64;
        let drop_pct = 100.0
            * (1.0
                - b.data_pages_fetched as f64
                    / log0.report.breakdown.data_pages_fetched.max(1) as f64);
        table.row(vec![
            cell.cache_label.to_string(),
            format!("{analysis_pct:.2}"),
            format!("{idx_pct:.2}"),
            format!("{drop_pct:.1}"),
        ]);
        eprintln!("  finished {}", cell.cache_label);
    }
    println!("{}", table.render());
    println!("Paper: analysis <2%; index stalls 16%->2% of redo; DPT stall-IO cut 93%->8%.");
}
