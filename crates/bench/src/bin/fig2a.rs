//! **Figure 2(a)** — redo recovery time (simulated ms) vs cache size, for
//! the five methods of §5.2: Log0, Log1, SQL1, Log2, SQL2.
//!
//! ```sh
//! cargo run --release -p lr-bench --bin fig2a            # paper_tenth scale
//! LR_SCALE=smoke cargo run --release -p lr-bench --bin fig2a
//! ```
//!
//! Also prints the §5.3 headline-claim checks (Log1 vs SQL1, Log2 vs SQL2,
//! DPT and prefetch improvement factors at the 512MB-equivalent point).

use lr_bench::prelude::*;

fn main() {
    let preset = preset_from_env();
    let methods = RecoveryMethod::paper_five();
    let cells = sweep_cells(preset);

    println!("Figure 2(a): redo time (simulated ms) vs cache size — preset {preset:?}");
    println!("(cache labels are the paper's MB axis; sizes are the same DB fractions)\n");

    let mut table = Table::new(&["cache", "Log0", "Log1", "SQL1", "Log2", "SQL2"]);
    let mut at_512: Vec<(RecoveryMethod, f64)> = Vec::new();
    let mut csv = Table::new(&["cache", "method", "redo_ms", "dpt", "data_fetch", "stall_ms"]);

    for cell in &cells {
        let run = CellRun::prepare(cell);
        let mut row = vec![cell.cache_label.to_string()];
        for method in methods {
            let r = run.recover_with(method);
            let redo = r.report.redo_ms();
            row.push(format!("{redo:.1}"));
            csv.row(vec![
                cell.cache_label.to_string(),
                method.name().to_string(),
                format!("{redo:.1}"),
                r.report.breakdown.dpt_size.to_string(),
                r.report.breakdown.data_pages_fetched.to_string(),
                format!("{:.1}", r.report.breakdown.data_stall_us as f64 / 1000.0),
            ]);
            if cell.cache_label == "512MB" {
                at_512.push((method, redo));
            }
        }
        table.row(row);
        eprintln!("  finished cache {}", cell.cache_label);
    }

    println!("{}", table.render());
    println!("CSV:\n{}", csv.to_csv());

    // ---- §5.3 claim checks at the 512MB-equivalent point ----
    let get = |m: RecoveryMethod| at_512.iter().find(|(mm, _)| *mm == m).map(|(_, v)| *v);
    if let (Some(log0), Some(log1), Some(sql1), Some(log2), Some(sql2)) = (
        get(RecoveryMethod::Log0),
        get(RecoveryMethod::Log1),
        get(RecoveryMethod::Sql1),
        get(RecoveryMethod::Log2),
        get(RecoveryMethod::Sql2),
    ) {
        println!("§5.3 claims at the 512MB-equivalent cache:");
        println!(
            "  DPT drop Log0->Log1:      {:>5.1}%   (paper: ~65%)",
            100.0 * (1.0 - log1 / log0)
        );
        println!(
            "  prefetch drop Log1->Log2: {:>5.1}%   (paper: ~20%)",
            100.0 * (1.0 - log2 / log1)
        );
        println!(
            "  Log1 / SQL1:              {:>5.2}x   (paper: 'practically the same')",
            log1 / sql1
        );
        println!(
            "  Log2 / SQL2:              {:>5.2}x   (paper: within 15%, worst case at 2048MB)",
            log2 / sql2
        );
    }
}
