//! **writepath** — latched vs optimistic write-prepare path on the
//! update-heavy preset (95% same-size updates / 5% point reads, uniform
//! keys, warm cache).
//!
//! ```sh
//! cargo run --release -p lr-bench --bin writepath
//! LR_THREADS=4 LR_WRITES=40000 LR_KEYS=20000 \
//!     cargo run --release -p lr-bench --bin writepath
//! ```
//!
//! Runs the same workload twice — `EngineConfig::optimistic_writes` off
//! (every prepare descends under the shared table latch with per-frame
//! read latches) and on (latch-free OLC descent, version-validated write
//! upgrade of the leaf only, bounded restarts, latched fallback) — and
//! reports per-mode committed update throughput and latency quantiles as
//! JSON lines:
//!
//! ```json
//! {"bench":"writepath","mode":"latched","threads":4,"writes":40000,...}
//! {"bench":"writepath","mode":"optimistic",...}
//! ```
//!
//! **CI gate:** exits nonzero if optimistic update throughput falls below
//! the latched baseline (scaled by `LR_WRITEPATH_MARGIN`, default 1.0 —
//! strict) — the acceptance criterion that the OLC write path is a win,
//! not a regression, on its target workload.
//!
//! `LR_BACKEND` selects the data component (any registry name). The OLC
//! write A/B and its margin gate only apply to the B-tree family; other
//! backends run both modes for the numbers but skip the gate (the knob
//! is a no-op for them).

use lr_core::{Engine, EngineConfig, Session, DEFAULT_TABLE};
use lr_obs::{BenchSummary, Json};
use lr_workload::{KeyDist, OpMix, TxnGenerator, WorkloadSpec};
use std::time::Instant;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

struct ModeReport {
    writes: u64,
    reads: u64,
    wall_s: f64,
    writes_per_sec: f64,
    p50_ns: u64,
    p99_ns: u64,
    max_ns: u64,
    optimistic_writes: u64,
    write_fallbacks: u64,
    write_restarts: u64,
    leaf_upgrades_failed: u64,
    restart_hist: lr_common::Histogram,
}

/// Render a per-attempt restart histogram (`bucket lower bound:count`,
/// power-of-two buckets) — the contention tail a mean restarts-per-op
/// number hides.
fn restart_buckets(h: &lr_common::Histogram) -> String {
    let parts: Vec<String> =
        h.nonzero_buckets().iter().map(|(lo, c)| format!("{lo}:{c}")).collect();
    if parts.is_empty() {
        "(empty)".to_string()
    } else {
        parts.join(" ")
    }
}

/// One measured run: `threads` sessions over the update-heavy mix, timing
/// every committed update transaction individually.
fn run_mode(
    backend: &str,
    optimistic: bool,
    threads: usize,
    writes_target: u64,
    key_space: u64,
) -> ModeReport {
    let engine = Engine::build(EngineConfig {
        initial_rows: key_space,
        pool_pages: (key_space / 8).max(1_024) as usize,
        io_model: lr_common::IoModel::zero(),
        optimistic_writes: optimistic,
        backend: backend.to_string(),
        ..EngineConfig::default()
    })
    .expect("engine build")
    .into_shared();

    // Warm the cache: one full latched scan pulls every leaf and internal
    // page in, so both modes measure the in-memory prepare path, not
    // device misses.
    let warm = engine.scan_range(DEFAULT_TABLE, 0, u64::MAX).expect("warm scan");
    assert_eq!(warm.len() as u64, key_space, "warm scan saw the whole table");

    let per_thread = writes_target / threads as u64;
    let start = Instant::now();
    let shards: Vec<(u64, u64, lr_common::Histogram)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let mut session: Session = Engine::session(&engine);
                // Same-size updates (loaded rows and generated values are
                // both 100 bytes): never an SMO, so the whole run exercises
                // the in-place prepare the OLC upgrade targets.
                let spec = WorkloadSpec {
                    key_space,
                    txn_ops: 10,
                    mix: OpMix { update_pct: 95, read_pct: 5, insert_pct: 0, delete_pct: 0 },
                    dist: KeyDist::Uniform,
                    value_size: 100,
                    seed: 42 + t as u64,
                };
                s.spawn(move || {
                    let mut gen = TxnGenerator::new_with_insert_band(spec, t as u64 + 1);
                    let mut hist = lr_common::Histogram::new();
                    let mut writes = 0u64;
                    let mut reads = 0u64;
                    while writes < per_thread {
                        for op in gen.next_txn() {
                            match op {
                                lr_workload::Op::Update { key, value } => {
                                    let t0 = Instant::now();
                                    session
                                        .run_txn(10_000, |s| {
                                            s.update_in(DEFAULT_TABLE, key, value.clone())
                                        })
                                        .expect("update");
                                    hist.record(t0.elapsed().as_nanos() as u64);
                                    writes += 1;
                                }
                                lr_workload::Op::Read { key } => {
                                    let v = session.read(DEFAULT_TABLE, key).expect("read");
                                    assert!(v.is_some(), "loaded key {key} must exist");
                                    reads += 1;
                                }
                                _ => {}
                            }
                        }
                    }
                    (writes, reads, hist)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("writer thread panicked")).collect()
    });
    let wall = start.elapsed();

    let mut hist = lr_common::Histogram::new();
    let mut writes = 0u64;
    let mut reads = 0u64;
    for (w, r, h) in &shards {
        writes += w;
        reads += r;
        hist.merge(h);
    }
    let stats = engine.stats();
    engine.tc().locks().assert_no_leaks();
    ModeReport {
        writes,
        reads,
        wall_s: wall.as_secs_f64(),
        writes_per_sec: writes as f64 / wall.as_secs_f64().max(1e-9),
        p50_ns: hist.quantile(0.50),
        p99_ns: hist.quantile(0.99),
        max_ns: hist.max(),
        optimistic_writes: stats.optimistic_writes,
        write_fallbacks: stats.write_fallbacks,
        write_restarts: stats.write_restarts,
        leaf_upgrades_failed: stats.leaf_upgrades_failed,
        restart_hist: stats.write_restart_hist,
    }
}

fn emit(backend: &str, mode: &str, threads: usize, r: &ModeReport) {
    // The backend tag keeps harvested JSON lines attributable across the
    // registry (btree's OLC A/B, the log backend's append path, ...).
    println!(
        "{{\"bench\":\"writepath\",\"backend\":\"{backend}\",\"mode\":\"{mode}\",\"threads\":{threads},\
         \"writes\":{},\"reads\":{},\"wall_s\":{:.3},\"writes_per_sec\":{:.0},\
         \"p50_ns\":{},\"p99_ns\":{},\"max_ns\":{},\
         \"optimistic_writes\":{},\"write_fallbacks\":{},\
         \"write_restarts\":{},\"leaf_upgrades_failed\":{}}}",
        r.writes,
        r.reads,
        r.wall_s,
        r.writes_per_sec,
        r.p50_ns,
        r.p99_ns,
        r.max_ns,
        r.optimistic_writes,
        r.write_fallbacks,
        r.write_restarts,
        r.leaf_upgrades_failed,
    );
    eprintln!(
        "  {mode} write-restart distribution: {} prepares, mean {:.4} restarts, \
         max {}, buckets [{}]",
        r.restart_hist.count(),
        r.restart_hist.mean(),
        r.restart_hist.max(),
        restart_buckets(&r.restart_hist),
    );
}

/// The same per-mode measurements as the JSON line, as a summary point.
fn point(backend: &str, mode: &str, threads: usize, r: &ModeReport) -> Json {
    Json::obj()
        .with("backend", Json::from(backend))
        .with("mode", Json::from(mode))
        .with("threads", Json::from(threads as u64))
        .with("writes", Json::from(r.writes))
        .with("reads", Json::from(r.reads))
        .with("wall_s", Json::from(r.wall_s))
        .with("writes_per_sec", Json::from(r.writes_per_sec))
        .with("p50_ns", Json::from(r.p50_ns))
        .with("p99_ns", Json::from(r.p99_ns))
        .with("max_ns", Json::from(r.max_ns))
        .with("optimistic_writes", Json::from(r.optimistic_writes))
        .with("write_fallbacks", Json::from(r.write_fallbacks))
        .with("write_restarts", Json::from(r.write_restarts))
        .with("leaf_upgrades_failed", Json::from(r.leaf_upgrades_failed))
}

fn main() {
    let threads = env_u64("LR_THREADS", 4) as usize;
    let writes = env_u64("LR_WRITES", 40_000);
    let key_space = env_u64("LR_KEYS", 20_000);
    let margin = env_f64("LR_WRITEPATH_MARGIN", 1.0);
    let backend = std::env::var("LR_BACKEND").unwrap_or_else(|_| "btree".to_string());
    // The latched-vs-OLC comparison only exists on the B-tree family;
    // other backends still run both modes (the knob is inert) but the
    // margin gate and the dead-path asserts would be vacuous or wrong.
    let olc_ab = backend == "btree" || backend == "remote:btree";

    let mut summary = BenchSummary::new("writepath");
    summary.config("backend", Json::from(backend.as_str()));
    summary.config("threads", Json::from(threads as u64));
    summary.config("writes", Json::from(writes));
    summary.config("keys", Json::from(key_space));
    summary.config("margin", Json::from(margin));

    eprintln!(
        "writepath: update-heavy preset (95/5), backend {backend}, {threads} thread(s), \
         ~{writes} timed updates per mode, {key_space} keys, warm cache"
    );

    let latched = run_mode(&backend, false, threads, writes, key_space);
    assert_eq!(
        latched.optimistic_writes, 0,
        "LR_WRITE_OPTIMISTIC off must not touch the optimistic prepare path"
    );
    emit(&backend, "latched", threads, &latched);
    summary.point(point(&backend, "latched", threads, &latched));

    let optimistic = run_mode(&backend, true, threads, writes, key_space);
    emit(&backend, "optimistic", threads, &optimistic);
    summary.point(point(&backend, "optimistic", threads, &optimistic));

    if olc_ab {
        assert!(
            optimistic.optimistic_writes > 0,
            "optimistic mode never validated a single prepare — the path is dead"
        );
    }

    let speedup = optimistic.writes_per_sec / latched.writes_per_sec.max(1e-9);
    eprintln!(
        "writepath: optimistic {:.0} writes/s vs latched {:.0} writes/s ({speedup:.2}x), \
         p99 {} ns vs {} ns, {} fallbacks, {} restarts, {} failed upgrades",
        optimistic.writes_per_sec,
        latched.writes_per_sec,
        optimistic.p99_ns,
        latched.p99_ns,
        optimistic.write_fallbacks,
        optimistic.write_restarts,
        optimistic.leaf_upgrades_failed,
    );
    let pass = !olc_ab || optimistic.writes_per_sec >= latched.writes_per_sec * margin;
    summary.gate(
        Json::obj()
            .with("gate", Json::from("writepath_margin"))
            .with("speedup", Json::from(speedup))
            .with("margin", Json::from(margin))
            .with("pass", Json::from(pass)),
    );
    match summary.write() {
        Ok(path) => eprintln!("summary: {}", path.display()),
        Err(e) => eprintln!("warning: could not write bench summary: {e}"),
    }
    if !pass {
        eprintln!(
            "FAIL: optimistic update throughput below the latched \
             baseline (margin {margin})"
        );
        std::process::exit(1);
    }
    if olc_ab {
        eprintln!("PASS: optimistic updates at or above the latched baseline");
    } else {
        eprintln!("note: backend {backend} has no OLC write A/B; margin gate skipped");
    }
}
