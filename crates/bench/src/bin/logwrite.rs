//! **logwrite** — durable-write amplification of the log-structured DC
//! vs the B-tree DC on the update-heavy §5.2 workload.
//!
//! ```sh
//! cargo run --release -p lr-bench --bin logwrite
//! LR_THREADS=4 LR_TXNS=4000 LR_KEYS=20000 \
//!     cargo run --release -p lr-bench --bin logwrite
//! ```
//!
//! The log backend's claim is a one-append write path: each committed
//! write costs exactly its log record, data pages are never dirtied, and
//! the only extra durable traffic is background compaction migrating live
//! versions out of cold segments. The B-tree pays the same log record
//! *plus* every flushed data page (cleaner sweeps, eviction, checkpoint).
//! This bench runs the identical workload on both backends with the
//! maintenance service on, then charges each backend its total durable
//! bytes — log growth plus `page_writes × page_size` — per committed
//! update.
//!
//! **CI gate:** exits nonzero unless the log backend's durable bytes per
//! committed write is strictly below the B-tree's (scaled by
//! `LR_LOGWRITE_MARGIN`, default 1.0 — strict).

use lr_core::{Engine, EngineConfig};
use lr_obs::{BenchSummary, Json};
use lr_workload::{run_concurrent, ConcurrentScenario};

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

struct BackendReport {
    committed: u64,
    writes: u64,
    wall_s: f64,
    log_bytes: u64,
    page_write_bytes: u64,
    durable_bytes: u64,
    bytes_per_write: f64,
    segments_compacted: u64,
    live_bytes_migrated: u64,
    dead_bytes_reclaimed: u64,
    smo_records: u64,
}

/// One measured run: fresh engine on `backend`, the §5.2 update scenario
/// with background maintenance (cleaner for the B-tree, compactor for the
/// log backend), then the durable-byte bill.
fn run_backend(backend: &str, threads: usize, txns: u64, keys: u64) -> BackendReport {
    let cfg = EngineConfig {
        initial_rows: keys,
        pool_pages: (keys / 8).max(1_024) as usize,
        io_model: lr_common::IoModel::zero(),
        background_maintenance: true,
        maint_tick_ms: 1,
        backend: backend.to_string(),
        ..EngineConfig::default()
    };
    let page_size = cfg.page_size as u64;
    let engine = Engine::build(cfg).expect("engine build").into_shared();

    // Bill only the workload: snapshot the durable counters after the
    // bulk load settles.
    let io0 = engine.dc().pool().disk().stats();
    let log0 = engine.wal().lock().byte_len();

    let scenario = ConcurrentScenario::paper_default(threads, txns / threads as u64, keys);
    let t0 = std::time::Instant::now();
    let report = run_concurrent(&engine, &scenario).expect("concurrent run");
    let wall = t0.elapsed();
    engine.tc().locks().assert_no_leaks();

    // Quiesce maintenance before reading the bill so a mid-flight sweep
    // can't smear bytes across the snapshot.
    engine.checkpoint().expect("final checkpoint");
    engine.stop_maintenance();

    let io1 = engine.dc().pool().disk().stats();
    let log1 = engine.wal().lock().byte_len();
    let dc_stats = engine.dc().stats();

    let log_bytes = log1.saturating_sub(log0);
    let page_write_bytes = (io1.page_writes - io0.page_writes) * page_size;
    let durable_bytes = log_bytes + page_write_bytes;
    let writes = report.committed * scenario.spec.txn_ops as u64;
    BackendReport {
        committed: report.committed,
        writes,
        wall_s: wall.as_secs_f64(),
        log_bytes,
        page_write_bytes,
        durable_bytes,
        bytes_per_write: durable_bytes as f64 / writes.max(1) as f64,
        segments_compacted: dc_stats.segments_compacted,
        live_bytes_migrated: dc_stats.live_bytes_migrated,
        dead_bytes_reclaimed: dc_stats.dead_bytes_reclaimed,
        smo_records: dc_stats.smo_records_written,
    }
}

fn emit(backend: &str, threads: usize, r: &BackendReport) {
    println!(
        "{{\"bench\":\"logwrite\",\"backend\":\"{backend}\",\"threads\":{threads},\
         \"committed\":{},\"writes\":{},\"wall_s\":{:.3},\
         \"log_bytes\":{},\"page_write_bytes\":{},\"durable_bytes\":{},\
         \"bytes_per_write\":{:.1},\"segments_compacted\":{},\
         \"live_bytes_migrated\":{},\"dead_bytes_reclaimed\":{}}}",
        r.committed,
        r.writes,
        r.wall_s,
        r.log_bytes,
        r.page_write_bytes,
        r.durable_bytes,
        r.bytes_per_write,
        r.segments_compacted,
        r.live_bytes_migrated,
        r.dead_bytes_reclaimed,
    );
}

fn point(backend: &str, threads: usize, r: &BackendReport) -> Json {
    Json::obj()
        .with("backend", Json::from(backend))
        .with("threads", Json::from(threads as u64))
        .with("committed", Json::from(r.committed))
        .with("writes", Json::from(r.writes))
        .with("wall_s", Json::from(r.wall_s))
        .with("log_bytes", Json::from(r.log_bytes))
        .with("page_write_bytes", Json::from(r.page_write_bytes))
        .with("durable_bytes", Json::from(r.durable_bytes))
        .with("bytes_per_write", Json::from(r.bytes_per_write))
        .with("segments_compacted", Json::from(r.segments_compacted))
        .with("live_bytes_migrated", Json::from(r.live_bytes_migrated))
        .with("dead_bytes_reclaimed", Json::from(r.dead_bytes_reclaimed))
        .with("smo_records", Json::from(r.smo_records))
}

fn main() {
    let threads = env_u64("LR_THREADS", 4) as usize;
    // Enough update churn over the keyspace that the cold log's garbage
    // fraction clears the default watermark and the compactor fires
    // during the run (~4 versions per key → ~75% dead).
    let txns = env_u64("LR_TXNS", 8_000);
    let keys = env_u64("LR_KEYS", 20_000);
    let margin = env_f64("LR_LOGWRITE_MARGIN", 1.0);

    let mut summary = BenchSummary::new("logwrite");
    summary.config("threads", Json::from(threads as u64));
    summary.config("txns", Json::from(txns));
    summary.config("keys", Json::from(keys));
    summary.config("margin", Json::from(margin));

    eprintln!(
        "logwrite: §5.2 update workload, {threads} thread(s), {txns} txns, {keys} keys, \
         maintenance on — durable bytes per committed write, btree vs log"
    );

    let btree = run_backend("btree", threads, txns, keys);
    emit("btree", threads, &btree);
    summary.point(point("btree", threads, &btree));

    let log = run_backend("log", threads, txns, keys);
    emit("log", threads, &log);
    summary.point(point("log", threads, &log));

    eprintln!(
        "logwrite: btree {:.1} durable B/write ({} log + {} page bytes) vs \
         log {:.1} B/write ({} log + {} page bytes, {} segments compacted, \
         {} live migrated, {} dead reclaimed)",
        btree.bytes_per_write,
        btree.log_bytes,
        btree.page_write_bytes,
        log.bytes_per_write,
        log.log_bytes,
        log.page_write_bytes,
        log.segments_compacted,
        log.live_bytes_migrated,
        log.dead_bytes_reclaimed,
    );

    let ratio = log.bytes_per_write / btree.bytes_per_write.max(1e-9);
    let pass = log.bytes_per_write < btree.bytes_per_write * margin;
    summary.gate(
        Json::obj()
            .with("gate", Json::from("append_amplification"))
            .with("btree_bytes_per_write", Json::from(btree.bytes_per_write))
            .with("log_bytes_per_write", Json::from(log.bytes_per_write))
            .with("ratio", Json::from(ratio))
            .with("margin", Json::from(margin))
            .with("pass", Json::from(pass)),
    );
    match summary.write() {
        Ok(path) => eprintln!("summary: {}", path.display()),
        Err(e) => eprintln!("warning: could not write bench summary: {e}"),
    }
    if !pass {
        eprintln!(
            "FAIL: log backend durable bytes per write not below the B-tree's \
             (ratio {ratio:.2}, margin {margin})"
        );
        std::process::exit(1);
    }
    eprintln!("PASS: log backend writes fewer durable bytes per committed update ({ratio:.2}x)");
}
