//! **Figure 2(c)** — Δ-log records vs BW-log records seen by the analysis
//! pass, per cache size. The Δ count exceeding the BW count (cache-fill
//! dirty batches) is the paper's measured logging overhead for logical
//! recovery: "no more than 1.5x the number of BW-log records" up to 1024MB.
//!
//! ```sh
//! cargo run --release -p lr-bench --bin fig2c
//! ```

use lr_bench::prelude::*;

fn main() {
    let preset = preset_from_env();
    println!("Figure 2(c): Δ- and BW-log records seen by analysis — preset {preset:?}\n");

    let mut table = Table::new(&[
        "cache",
        "Δ-records",
        "BW-records",
        "Δ/BW",
        "Δ-bytes(run)",
        "BW-bytes(run)",
        "log-bytes(run)",
    ]);

    for cell in sweep_cells(preset) {
        // The analysis-window counts come from any DPT-building recovery.
        let (engine, _shadow, outcome) = lr_bench::run_to_crash_only(&cell);
        let report = engine.recover(RecoveryMethod::Log1).expect("recovery");
        let seen_delta = report.breakdown.delta_records_seen;
        let seen_bw = report.breakdown.bw_records_seen;
        let dc_stats = {
            // Whole-run volumes (not just the analysis window).
            let _ = &outcome;
            engine.dc().stats()
        };
        let wal_bytes = engine.wal().lock().byte_len();
        table.row(vec![
            cell.cache_label.to_string(),
            seen_delta.to_string(),
            seen_bw.to_string(),
            if seen_bw > 0 {
                format!("{:.2}", seen_delta as f64 / seen_bw as f64)
            } else {
                "inf".to_string()
            },
            dc_stats.delta_bytes_logged.to_string(),
            dc_stats.bw_bytes_logged.to_string(),
            wal_bytes.to_string(),
        ]);
        eprintln!("  finished cache {}", cell.cache_label);
    }

    println!("{}", table.render());
    println!("Paper shape: more Δ than BW records (extra dirty-only batches while the");
    println!("cache fills); ratio <= ~1.5x for caches up to the 1024MB-equivalent.");
}
