//! **Appendix B** — validate the analytic cost model (Eqs. 1–3) against
//! measured page-unit costs for Log0, SQL1 and Log1 across the cache sweep.
//!
//! ```sh
//! cargo run --release -p lr-bench --bin costmodel
//! ```

use lr_bench::prelude::*;

fn main() {
    let preset = preset_from_env();
    println!("Appendix B cost model: predicted vs measured page units — preset {preset:?}\n");
    println!("units are page fetches + log pages (the model's currency)\n");

    let mut table = Table::new(&[
        "cache",
        "method",
        "predicted",
        "measured",
        "ratio",
        "dpt",
        "tail",
        "log-pages",
        "index-pages",
    ]);

    for cell in sweep_cells(preset) {
        let run = CellRun::prepare(&cell);
        for method in [RecoveryMethod::Log0, RecoveryMethod::Sql1, RecoveryMethod::Log1] {
            let r = run.recover_with(method);
            let inputs = CostInputs::from_report(&r.report, r.index_pages);
            let predicted = predicted_page_fetches(method, inputs)
                .expect("model covers non-prefetching methods");
            let measured = lr_core::costmodel::measured_page_units(&r.report);
            table.row(vec![
                cell.cache_label.to_string(),
                method.name().to_string(),
                predicted.to_string(),
                measured.to_string(),
                format!("{:.2}", measured as f64 / predicted.max(1) as f64),
                inputs.dpt_size.to_string(),
                inputs.tail_records.to_string(),
                inputs.log_pages.to_string(),
                inputs.index_pages.to_string(),
            ]);
        }
        eprintln!("  finished cache {}", cell.cache_label);
    }

    println!("{}", table.render());
    println!("Eq.1 COST(Log0) ~ #log records + log pages + index pages");
    println!("Eq.2 COST(SQL1) ~ DPT size + log pages");
    println!("Eq.3 COST(Log1) ~ DPT size + tail records + log pages + index pages");
    println!("\nRatios near 1.0 validate the model. Log0's prediction overshoots when");
    println!("several log records hit the same page (the model assumes distinct PIDs)");
    println!("and when the cache is large enough to absorb repeats — both anticipated");
    println!("by the paper's 'ignoring page swaps' caveat.");
}
