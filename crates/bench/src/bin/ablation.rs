//! **Appendix D ablation** — the Δ-record design spectrum at the
//! 512MB-equivalent cache:
//!
//! * `Log-perfect` (D.1): Δ records carry exact per-dirtying LSNs — the
//!   most accurate DPT, the most logging;
//! * `Log1` (the paper's chosen point): FW-LSN + FirstDirty;
//! * `Log-reduced` (D.2): no FW-LSN/FirstDirty — least logging, most
//!   conservative DPT.
//!
//! Plus the §3.1 ARIES checkpoint-captured DPT, which motivates flush
//! tracking in the first place (no pruning → bloated DPT).
//!
//! ```sh
//! cargo run --release -p lr-bench --bin ablation
//! ```

use lr_bench::prelude::*;
use lr_core::EngineConfig;

fn tweak_perfect(cfg: &mut EngineConfig) {
    cfg.perfect_delta_lsns = true;
}

fn tweak_aries(cfg: &mut EngineConfig) {
    cfg.aries_ckpt_capture = true;
}

type Variant = (&'static str, RecoveryMethod, fn(&mut EngineConfig));

fn main() {
    let preset = preset_from_env();
    let (label, pool_pages) = preset.cache_sweep()[3];
    println!("Appendix D ablation — preset {preset:?}, cache {label}\n");

    let mut table = Table::new(&[
        "variant",
        "redo(ms)",
        "DPT",
        "data-fetch",
        "skipped-dpt",
        "skipped-rlsn",
        "Δ-records(run)",
    ]);

    let runs: [Variant; 6] = [
        ("Log-perfect (D.1)", RecoveryMethod::LogPerfect, tweak_perfect),
        ("Log1 (chosen)", RecoveryMethod::Log1, |_| {}),
        ("Log-reduced (D.2)", RecoveryMethod::LogReduced, |_| {}),
        ("ARIES-ckpt (§3.1)", RecoveryMethod::AriesCkpt, tweak_aries),
        ("Log2 PF-list (A.2)", RecoveryMethod::Log2, |_| {}),
        ("Log2 DPT-driven (A.2 alt)", RecoveryMethod::Log2DptPrefetch, |_| {}),
    ];

    for (name, method, tweak) in runs {
        let mut cell = Cell::new(preset, label, pool_pages, EXPERIMENT_SEED);
        cell.tweak = tweak;
        let r = run_cell(&cell, method);
        let b = &r.report.breakdown;
        // Whole-run Δ logging volume (captured pre-crash in the outcome).
        table.row(vec![
            name.to_string(),
            format!("{:.1}", r.report.redo_ms()),
            b.dpt_size.to_string(),
            b.data_pages_fetched.to_string(),
            b.skipped_no_dpt_entry.to_string(),
            b.skipped_rlsn.to_string(),
            r.outcome.delta_records.to_string(),
        ]);
        eprintln!("  finished {name}");
    }

    println!("{}", table.render());
    println!("Expected ordering: DPT(perfect) <= DPT(Log1) <= DPT(reduced) << DPT(ARIES-ckpt);");
    println!("redo time follows DPT size (Appendix B). The paper picks the middle point:");
    println!("'we log roughly as much as SQL Server does ... the constructed DPT has");
    println!("roughly the same accuracy' (Appendix D).");
}
