//! **Figure 2(b)** — dirty fraction of the cache (%) at crash time vs cache
//! size, plus the DPT's coverage of it. Method-independent: one run per
//! cache size.
//!
//! ```sh
//! cargo run --release -p lr-bench --bin fig2b
//! ```

use lr_bench::prelude::*;

fn main() {
    let preset = preset_from_env();
    println!("Figure 2(b): dirty percent of cache at crash — preset {preset:?}\n");

    let mut table = Table::new(&[
        "cache",
        "frames",
        "cached",
        "dirty",
        "dirty/cache(%)",
        "DPT",
        "DPT/cache(%)",
    ]);

    for cell in sweep_cells(preset) {
        // Any DPT-building method works; Log1 is the paper's.
        let r = run_cell(&cell, RecoveryMethod::Log1);
        let snap = &r.snapshot;
        table.row(vec![
            cell.cache_label.to_string(),
            snap.pool_capacity.to_string(),
            snap.cached_pages.to_string(),
            snap.dirty_pages.to_string(),
            format!("{:.1}", snap.dirty_percent_of_cache()),
            r.report.breakdown.dpt_size.to_string(),
            format!(
                "{:.1}",
                100.0 * r.report.breakdown.dpt_size as f64 / snap.pool_capacity as f64
            ),
        ]);
        eprintln!("  finished cache {}", cell.cache_label);
    }

    println!("{}", table.render());
    println!("Paper shape: ~30% dirty at the smallest cache falling toward ~10%,");
    println!("with the largest caches not filling (checkpoint flushing keeps up).");
}
