//! Plain-text tables and CSV output for the figure harnesses.

/// A simple fixed-width table builder.
#[derive(Clone, Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(header: &[&str]) -> Table {
        Table { header: header.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                // Right-align numerics-ish columns (everything but col 0).
                if i == 0 {
                    line.push_str(&format!("{:<w$}", c, w = widths[i]));
                } else {
                    line.push_str(&format!("{:>w$}", c, w = widths[i]));
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Render as CSV (for plotting).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.header.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Format a simulated-µs duration as milliseconds with one decimal.
pub fn ms(us: u64) -> String {
    format!("{:.1}", us as f64 / 1_000.0)
}

/// Format a float with one decimal.
pub fn f1(v: f64) -> String {
    format!("{v:.1}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut t = Table::new(&["cache", "Log0", "SQL1"]);
        t.row(vec!["64MB".into(), "12345.6".into(), "99.1".into()]);
        t.row(vec!["2048MB".into(), "7.0".into(), "12345.0".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("cache"));
        assert!(lines[2].starts_with("64MB"));
        // Right-aligned numeric columns line up.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn csv_output() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        assert_eq!(t.to_csv(), "a,b\n1,2\n");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn width_mismatch_panics() {
        let mut t = Table::new(&["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }
}
