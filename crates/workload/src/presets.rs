//! Scale presets (DESIGN.md §8).
//!
//! The paper's table is 3.5 GB: 436,000 data pages, ~10^8 rows, an 832-page
//! index, cache sizes from 64 MB (~2% of the database) to 2048 MB (~60%).
//! `paper_tenth` preserves every *ratio* at one tenth the page count so the
//! figure harnesses run in seconds; `paper_full` is the 1:1 geometry for
//! the patient.

use crate::concurrent::ConcurrentScenario;
use crate::gen::WorkloadSpec;
use crate::scenario::CrashScenario;
use lr_core::EngineConfig;

/// A named experiment geometry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Preset {
    /// Tiny functional scale for tests.
    Smoke,
    /// 1/10 of the paper's geometry — the default for every figure harness.
    PaperTenth,
    /// The paper's full geometry (slow; several GB of memory).
    PaperFull,
}

impl Preset {
    /// Rows loaded into the table.
    pub fn initial_rows(self) -> u64 {
        match self {
            // ~32 rows per 4 KiB page at fill 0.9 with 100-byte values.
            Preset::Smoke => 600 * 32,
            Preset::PaperTenth => 43_600 * 32,
            Preset::PaperFull => 436_000 * 32,
        }
    }

    /// Approximate data-page count this geometry produces.
    pub fn data_pages(self) -> u64 {
        self.initial_rows() / 32
    }

    /// The engine configuration for a given cache size (in pages).
    pub fn engine_config(self, pool_pages: usize) -> EngineConfig {
        EngineConfig {
            page_size: 4096,
            log_page_size: 8192,
            pool_pages,
            initial_rows: self.initial_rows(),
            row_value_size: 100,
            fill_factor: 0.9,
            // Caps sized so the forced ~100-update tail fits without an
            // intervening automatic Δ emission (see scenario.rs).
            dirty_batch_cap: 128,
            flush_batch_cap: 128,
            perfect_delta_lsns: false,
            aries_ckpt_capture: false,
            dirty_watermark: 0.30,
            merge_min_fill: 0.0,
            io_model: lr_common::IoModel::default(),
            commit_force_us: 0,
            // The crash harnesses drive checkpoints deterministically from
            // the scenario, so the figure presets keep maintenance inline.
            ..EngineConfig::default()
        }
    }

    /// The crash scenario at this scale.
    pub fn scenario(self) -> CrashScenario {
        match self {
            Preset::Smoke => CrashScenario {
                updates_per_checkpoint: 400,
                checkpoints_before_crash: 4,
                tail_updates: 40,
                warm_cache: true,
            },
            Preset::PaperTenth => CrashScenario {
                updates_per_checkpoint: 4_000,
                checkpoints_before_crash: 10,
                tail_updates: 100,
                warm_cache: true,
            },
            Preset::PaperFull => CrashScenario {
                updates_per_checkpoint: 40_000,
                checkpoints_before_crash: 10,
                tail_updates: 100,
                warm_cache: true,
            },
        }
    }

    /// The §5.2 workload at this scale.
    pub fn workload(self, seed: u64) -> WorkloadSpec {
        WorkloadSpec::paper_default(self.initial_rows(), 100, seed)
    }

    /// The Figure-2 cache sweep: `(label, pool_pages)` pairs mirroring the
    /// paper's 64…2048 MB axis as fractions of the database (2%…60%).
    pub fn cache_sweep(self) -> Vec<(&'static str, usize)> {
        cache_sweep(self.data_pages())
    }
}

/// Bigger-than-memory concurrent preset: `threads` sessions over a
/// keyspace whose working set is ~4× the cache, with the background
/// maintenance service on (checkpointer + lazywriter) and no foreground
/// checkpoints at all. This is the larger-than-cache stress the clock
/// evictor unlocks — every session miss must find a victim without
/// scanning the resident set, while the service keeps the dirty fraction
/// at the watermark.
pub fn spill_concurrent(
    threads: usize,
    txns_per_thread: u64,
) -> (EngineConfig, ConcurrentScenario) {
    // ~32 rows per 4 KiB page at fill 0.9 → ~256 data pages vs 64 frames.
    let rows = 8_192u64;
    let cfg = EngineConfig {
        initial_rows: rows,
        pool_pages: 64,
        io_model: lr_common::IoModel::zero(),
        background_maintenance: true,
        maint_tick_ms: 1,
        ckpt_interval_ms: 10,
        ckpt_log_bytes: 256 << 10,
        cleaner_batch: 32,
        ..EngineConfig::default()
    };
    let scenario = ConcurrentScenario {
        threads,
        txns_per_thread,
        spec: WorkloadSpec::paper_default(rows, 100, 7),
        max_retries: 10_000,
        // The maintenance service owns checkpointing; sessions never do.
        checkpoint_every: 0,
    };
    (cfg, scenario)
}

/// Cache sizes as fractions of `data_pages`, labelled with the paper's
/// MB-equivalent axis: 64 MB ≈ 2%, doubling to 2048 MB ≈ 60%.
pub fn cache_sweep(data_pages: u64) -> Vec<(&'static str, usize)> {
    let frac = |f: f64| ((data_pages as f64 * f) as usize).max(8);
    vec![
        ("64MB", frac(0.02)),
        ("128MB", frac(0.04)),
        ("256MB", frac(0.08)),
        ("512MB", frac(0.15)),
        ("1024MB", frac(0.30)),
        ("2048MB", frac(0.60)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_monotone_and_scaled() {
        let sweep = Preset::PaperTenth.cache_sweep();
        assert_eq!(sweep.len(), 6);
        for w in sweep.windows(2) {
            assert!(w[0].1 < w[1].1);
        }
        let (label, pages) = sweep[0];
        assert_eq!(label, "64MB");
        assert_eq!(pages, (43_600f64 * 0.02) as usize);
    }

    #[test]
    fn spill_preset_is_genuinely_larger_than_cache() {
        let (cfg, scenario) = spill_concurrent(4, 100);
        // ~32 rows/page at fill 0.9: the table must dwarf the pool.
        let data_pages = cfg.initial_rows / 32;
        assert!(
            data_pages as usize >= 3 * cfg.pool_pages,
            "working set ({data_pages} pages) must exceed the cache ({} frames)",
            cfg.pool_pages
        );
        assert!(cfg.background_maintenance, "service owns maintenance");
        assert_eq!(scenario.checkpoint_every, 0, "no foreground checkpoints");
        assert_eq!(scenario.threads, 4);
    }

    #[test]
    fn presets_scale_relative_to_each_other() {
        assert_eq!(Preset::PaperFull.data_pages(), 10 * Preset::PaperTenth.data_pages());
        assert!(Preset::Smoke.data_pages() < Preset::PaperTenth.data_pages());
        let cfg = Preset::Smoke.engine_config(64);
        assert_eq!(cfg.pool_pages, 64);
        assert_eq!(cfg.initial_rows, Preset::Smoke.initial_rows());
    }
}
