//! The concurrent workload driver: K sessions × the §5.2 update
//! transaction, with no-wait conflict retry.
//!
//! The paper's evaluation drives one stream; the session-based engine can
//! take one stream *per thread*. This driver is both the correctness
//! harness for `tests/concurrent_sessions.rs` and the measurement loop of
//! the `throughput` bench bin: every thread runs the same deterministic
//! generator shape (shifted seed), counts commits and conflict retries,
//! and the run reports committed-transaction throughput.

use crate::gen::{Op, TxnGenerator, WorkloadSpec};
use lr_common::Result;
use lr_core::{Engine, Session, DEFAULT_TABLE};
use std::sync::Arc;
use std::time::Instant;

/// Parameters for a concurrent run.
#[derive(Clone, Debug)]
pub struct ConcurrentScenario {
    /// Worker threads (sessions).
    pub threads: usize,
    /// Transactions each thread commits.
    pub txns_per_thread: u64,
    /// Workload shape; each thread runs it with `seed + thread index`.
    pub spec: WorkloadSpec,
    /// No-wait conflict retries per transaction before giving up.
    pub max_retries: usize,
    /// Take a checkpoint every this many committed transactions (across
    /// all threads, approximately; 0 disables). Exercises bCkpt→RSSP→eCkpt
    /// against live sessions.
    pub checkpoint_every: u64,
}

impl ConcurrentScenario {
    /// The paper's update-only transaction at `threads` sessions.
    pub fn paper_default(threads: usize, txns_per_thread: u64, key_space: u64) -> Self {
        ConcurrentScenario {
            threads,
            txns_per_thread,
            spec: WorkloadSpec::paper_default(key_space, 100, 42),
            max_retries: 10_000,
            checkpoint_every: 0,
        }
    }

    /// Read-mostly preset: 95% point reads / 5% updates, uniform keys —
    /// the workload the latch-free optimistic read path is built for (the
    /// `readpath` bench's measurement mix; updates keep the frame version
    /// counters moving so validation is actually exercised).
    pub fn read_mostly(threads: usize, txns_per_thread: u64, key_space: u64) -> Self {
        use crate::gen::{KeyDist, OpMix};
        ConcurrentScenario {
            threads,
            txns_per_thread,
            spec: WorkloadSpec {
                key_space,
                txn_ops: 10,
                mix: OpMix { update_pct: 5, read_pct: 95, insert_pct: 0, delete_pct: 0 },
                dist: KeyDist::Uniform,
                value_size: 100,
                seed: 42,
            },
            max_retries: 10_000,
            checkpoint_every: 0,
        }
    }
}

/// Per-thread outcome.
#[derive(Clone, Debug, Default)]
pub struct ThreadReport {
    pub committed: u64,
    /// Lock-conflict retries (each one is an abort + rerun).
    pub conflict_retries: u64,
}

/// Whole-run outcome.
#[derive(Clone, Debug)]
pub struct ConcurrentReport {
    pub threads: usize,
    pub committed: u64,
    pub conflict_retries: u64,
    pub wall: std::time::Duration,
    pub per_thread: Vec<ThreadReport>,
    /// Log forces vs. commits (group-commit effectiveness).
    pub log_forces: u64,
}

impl ConcurrentReport {
    /// Committed transactions per wall-clock second.
    pub fn committed_per_sec(&self) -> f64 {
        if self.wall.as_secs_f64() == 0.0 {
            return 0.0;
        }
        self.committed as f64 / self.wall.as_secs_f64()
    }
}

/// One worker loop: `txns` transactions from `gen`, retried on conflicts.
fn worker(
    session: &mut Session,
    gen: &mut TxnGenerator,
    txns: u64,
    max_retries: usize,
) -> Result<ThreadReport> {
    let mut report = ThreadReport::default();
    for _ in 0..txns {
        let ops = gen.next_txn();
        let retries = session.run_txn(max_retries, |s| {
            for op in &ops {
                match op {
                    Op::Update { key, value } => s.update_in(DEFAULT_TABLE, *key, value.clone())?,
                    Op::Read { key } => {
                        let _ = s.read(DEFAULT_TABLE, *key)?;
                    }
                    Op::Insert { key, value } => s.insert_in(DEFAULT_TABLE, *key, value.clone())?,
                    Op::Delete { key } => s.delete_in(DEFAULT_TABLE, *key)?,
                }
            }
            Ok(())
        })?;
        report.conflict_retries += retries as u64;
        report.committed += 1;
    }
    Ok(report)
}

/// Run the scenario against a shared engine. Returns per-thread and
/// aggregate counts plus wall time.
///
/// Inserts in the mix use per-thread key bands (thread i inserts keys
/// `key_space * (i + 1) * 1e6 + n`) so generators on different threads
/// never collide on fresh keys.
pub fn run_concurrent(
    engine: &Arc<Engine>,
    scenario: &ConcurrentScenario,
) -> Result<ConcurrentReport> {
    let forces_before = engine.wal().group_commit_stats().forces;
    let start = Instant::now();
    let mut per_thread: Vec<ThreadReport> = Vec::with_capacity(scenario.threads);
    let ckpt_every = scenario.checkpoint_every;

    std::thread::scope(|s| -> Result<()> {
        let mut handles = Vec::with_capacity(scenario.threads);
        for t in 0..scenario.threads {
            let mut session = Engine::session(engine);
            let mut spec = scenario.spec.clone();
            spec.seed = spec.seed.wrapping_add(t as u64);
            let max_retries = scenario.max_retries;
            let txns = scenario.txns_per_thread;
            let engine = engine.clone();
            handles.push(s.spawn(move || -> Result<ThreadReport> {
                let mut gen = TxnGenerator::new_with_insert_band(spec, t as u64 + 1);
                if ckpt_every == 0 {
                    return worker(&mut session, &mut gen, txns, max_retries);
                }
                // Checkpointing variant: thread 0 doubles as the
                // checkpointer, interleaving bCkpt→RSSP→eCkpt with its own
                // transactions while the other sessions keep committing.
                let mut report = ThreadReport::default();
                let mut since_ckpt = 0u64;
                for _ in 0..txns {
                    let one = worker(&mut session, &mut gen, 1, max_retries)?;
                    report.committed += one.committed;
                    report.conflict_retries += one.conflict_retries;
                    since_ckpt += 1;
                    if t == 0 && since_ckpt >= ckpt_every {
                        engine.checkpoint()?;
                        since_ckpt = 0;
                    }
                }
                Ok(report)
            }));
        }
        for h in handles {
            per_thread.push(h.join().expect("worker thread panicked")?);
        }
        Ok(())
    })?;

    let wall = start.elapsed();
    let committed = per_thread.iter().map(|r| r.committed).sum();
    let conflict_retries = per_thread.iter().map(|r| r.conflict_retries).sum();
    Ok(ConcurrentReport {
        threads: scenario.threads,
        committed,
        conflict_retries,
        wall,
        per_thread,
        log_forces: engine.wal().group_commit_stats().forces - forces_before,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lr_core::{EngineConfig, RecoveryMethod};

    fn shared_engine(rows: u64) -> Arc<Engine> {
        Engine::build(EngineConfig {
            initial_rows: rows,
            pool_pages: 128,
            io_model: lr_common::IoModel::zero(),
            ..EngineConfig::default()
        })
        .unwrap()
        .into_shared()
    }

    #[test]
    fn four_threads_commit_everything() {
        let engine = shared_engine(2_000);
        let scenario = ConcurrentScenario::paper_default(4, 50, 2_000);
        let report = run_concurrent(&engine, &scenario).unwrap();
        assert_eq!(report.committed, 200);
        assert_eq!(engine.tc().stats().commits, 200);
        engine.tc().locks().assert_no_leaks();
        // Group commit: the log was forced at most once per commit.
        assert!(report.log_forces <= report.committed + 1, "{report:?}");
    }

    #[test]
    fn contended_keyspace_retries_but_completes() {
        let engine = shared_engine(64);
        // 8 threads over 64 keys with 10 updates per txn: conflicts are
        // inevitable; everything must still commit and release its locks.
        let scenario = ConcurrentScenario::paper_default(8, 25, 64);
        let report = run_concurrent(&engine, &scenario).unwrap();
        assert_eq!(report.committed, 8 * 25);
        // Retries are timing-dependent (a single-core scheduler can
        // serialize the threads conflict-free); the deterministic conflict
        // path is covered by lr-core's session tests. What must always
        // hold: every retry ended in a commit and no lock leaked.
        engine.tc().locks().assert_no_leaks();
    }

    #[test]
    fn checkpoints_run_against_live_sessions_and_state_recovers() {
        let engine = shared_engine(1_000);
        let mut scenario = ConcurrentScenario::paper_default(4, 60, 1_000);
        scenario.checkpoint_every = 10;
        let report = run_concurrent(&engine, &scenario).unwrap();
        assert_eq!(report.committed, 240);
        assert!(engine.checkpoints_taken() >= 3, "checkpointer ran");

        // Crash after the concurrent run; recovery must produce a readable,
        // structurally valid table.
        engine.crash();
        engine.recover(RecoveryMethod::Log1).unwrap();
        let summary = engine.verify_table(DEFAULT_TABLE).unwrap();
        assert_eq!(summary.records, 1_000);
    }
}
