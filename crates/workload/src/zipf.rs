//! Zipfian key sampling, implemented in-repo (DESIGN.md §7).
//!
//! Uses the Gray et al. / YCSB "quick zipf" construction: draw a uniform
//! `u`, map through the closed-form approximation of the Zipf CDF built
//! from two partial zeta sums. Exact for rank 1 and 2, approximate beyond —
//! plenty for generating skewed page-access patterns.

use rand::Rng;

/// A Zipf(θ) sampler over `0..n`.
#[derive(Clone, Debug)]
pub struct Zipf {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    zeta2: f64,
}

impl Zipf {
    /// Sampler over `0..n` with skew `theta` in (0, 1). θ→0 approaches
    /// uniform; YCSB's default hot-spot skew is 0.99.
    pub fn new(n: u64, theta: f64) -> Zipf {
        assert!(n > 0, "Zipf needs a non-empty domain");
        assert!(theta > 0.0 && theta < 1.0, "theta must be in (0,1), got {theta}");
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Zipf { n, theta, alpha, zetan, eta, zeta2 }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        // Direct summation up to a cap, then the Euler–Maclaurin integral
        // tail — keeps construction O(1)-ish for huge domains.
        const EXACT: u64 = 100_000;
        let m = n.min(EXACT);
        let mut sum = 0.0;
        for i in 1..=m {
            sum += 1.0 / (i as f64).powf(theta);
        }
        if n > m {
            // ∫_{m}^{n} x^-θ dx = (n^{1-θ} - m^{1-θ})/(1-θ)
            sum += ((n as f64).powf(1.0 - theta) - (m as f64).powf(1.0 - theta)) / (1.0 - theta);
        }
        sum
    }

    /// Draw a rank in `0..n` (0 is the hottest key).
    pub fn sample(&self, rng: &mut impl Rng) -> u64 {
        let u: f64 = rng.gen();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let rank = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.min(self.n - 1)
    }

    pub fn domain(&self) -> u64 {
        self.n
    }

    /// Exposed for tests.
    pub fn zeta2(&self) -> f64 {
        self.zeta2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn samples_stay_in_domain() {
        let z = Zipf::new(1_000, 0.99);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 1_000);
        }
    }

    #[test]
    fn skew_concentrates_mass() {
        let z = Zipf::new(10_000, 0.99);
        let mut rng = StdRng::seed_from_u64(42);
        let n = 100_000;
        let hot = (0..n).filter(|_| z.sample(&mut rng) < 100).count();
        // Top 1% of keys should absorb far more than 1% of accesses.
        assert!(
            hot as f64 / n as f64 > 0.3,
            "expected heavy skew, got {:.3}",
            hot as f64 / n as f64
        );
    }

    #[test]
    fn low_theta_approaches_uniform() {
        let z = Zipf::new(10_000, 0.1);
        let mut rng = StdRng::seed_from_u64(42);
        let n = 100_000;
        let hot = (0..n).filter(|_| z.sample(&mut rng) < 100).count();
        assert!(
            (hot as f64 / n as f64) < 0.15,
            "low skew should spread accesses, got {:.3}",
            hot as f64 / n as f64
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let z = Zipf::new(500, 0.8);
        let a: Vec<u64> = {
            let mut rng = StdRng::seed_from_u64(1);
            (0..100).map(|_| z.sample(&mut rng)).collect()
        };
        let b: Vec<u64> = {
            let mut rng = StdRng::seed_from_u64(1);
            (0..100).map(|_| z.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn zeta_tail_approximation_is_close() {
        // Compare capped+integral zeta against direct summation.
        let direct: f64 = (1..=200_000u64).map(|i| 1.0 / (i as f64).powf(0.9)).sum();
        let approx = Zipf::zeta(200_000, 0.9);
        assert!((direct - approx).abs() / direct < 1e-3);
    }

    #[test]
    #[should_panic(expected = "theta")]
    fn rejects_bad_theta() {
        let _ = Zipf::new(10, 1.5);
    }
}
