//! # lr-workload
//!
//! Everything needed to reproduce §5.2's experimental conditions:
//!
//! * [`gen`] — deterministic transaction generators (the paper's
//!   update-only, 10-updates-per-transaction, uniform-key workload, plus
//!   the skewed/read-mix variants Appendix B discusses qualitatively);
//! * [`zipf`] — an in-repo Zipfian sampler (no external dependency);
//! * [`scenario`] — the controlled-crash driver: warm the cache to steady
//!   state, checkpoint every `ci` updates, crash after the 10th checkpoint
//!   with a ~100-update log tail;
//! * [`presets`] — the scale presets of DESIGN.md §8 (`smoke`,
//!   `paper_tenth`, `paper_full`);
//! * [`report`] — plain-text table/CSV formatting for the figure harnesses;
//! * [`concurrent`] — the K-session driver: per-thread generators with
//!   no-wait conflict retry, feeding the `throughput` bench bin.

pub mod concurrent;
pub mod gen;
pub mod presets;
pub mod report;
pub mod scenario;
pub mod zipf;

pub use concurrent::{run_concurrent, ConcurrentReport, ConcurrentScenario, ThreadReport};
pub use gen::{KeyDist, Op, OpMix, TxnGenerator, WorkloadSpec};
pub use presets::{cache_sweep, spill_concurrent, Preset};
pub use scenario::{run_to_crash, CrashScenario, ScenarioOutcome};
pub use zipf::Zipf;
