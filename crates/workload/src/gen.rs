//! Transaction generators.
//!
//! §5.2: "The workloads are update-only, and consist of small transactions
//! (10 updates per transaction) that update the data attribute in a record
//! identified by an equality search on the key attribute." That is
//! [`WorkloadSpec::paper_default`]; the mix/skew knobs cover the variants
//! Appendix B reasons about (reads dilute update density; skew shrinks the
//! DPT).

use crate::zipf::Zipf;
use lr_common::Key;
use lr_core::config::deterministic_value;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One generated operation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Op {
    Update { key: Key, value: Vec<u8> },
    Read { key: Key },
    Insert { key: Key, value: Vec<u8> },
    Delete { key: Key },
}

/// Operation mix in percent; must sum to 100.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OpMix {
    pub update_pct: u8,
    pub read_pct: u8,
    pub insert_pct: u8,
    pub delete_pct: u8,
}

impl OpMix {
    pub const UPDATE_ONLY: OpMix =
        OpMix { update_pct: 100, read_pct: 0, insert_pct: 0, delete_pct: 0 };

    fn validate(&self) {
        assert_eq!(
            self.update_pct as u32
                + self.read_pct as u32
                + self.insert_pct as u32
                + self.delete_pct as u32,
            100,
            "op mix must sum to 100"
        );
    }
}

/// Key-choice distribution over the loaded key space.
#[derive(Clone, Debug)]
pub enum KeyDist {
    /// Uniform — the paper's worst case for redo ("maximizes the number of
    /// pages dirtied", Appendix B).
    Uniform,
    /// Zipf(θ) — better page locality, smaller DPT.
    Zipf(f64),
}

/// Workload description.
#[derive(Clone, Debug)]
pub struct WorkloadSpec {
    /// Keys `0..key_space` exist at load time.
    pub key_space: u64,
    /// Operations per transaction.
    pub txn_ops: usize,
    pub mix: OpMix,
    pub dist: KeyDist,
    /// Bytes in updated/inserted values.
    pub value_size: usize,
    /// RNG seed — equal seeds give byte-identical logs, which is what makes
    /// the side-by-side methodology exact (§5.1).
    pub seed: u64,
}

impl WorkloadSpec {
    /// The paper's §5.2 workload over `key_space` keys.
    pub fn paper_default(key_space: u64, value_size: usize, seed: u64) -> WorkloadSpec {
        WorkloadSpec {
            key_space,
            txn_ops: 10,
            mix: OpMix::UPDATE_ONLY,
            dist: KeyDist::Uniform,
            value_size,
            seed,
        }
    }
}

/// Deterministic transaction stream.
pub struct TxnGenerator {
    spec: WorkloadSpec,
    rng: StdRng,
    zipf: Option<Zipf>,
    /// Version counter per generated update, folded into values so every
    /// write is distinguishable.
    version: u64,
    /// Fresh keys for inserts start above the loaded space.
    next_insert_key: Key,
    /// Keys inserted by the workload and not yet deleted (delete targets).
    live_inserted: Vec<Key>,
}

impl TxnGenerator {
    pub fn new(spec: WorkloadSpec) -> TxnGenerator {
        TxnGenerator::new_with_insert_band(spec, 0)
    }

    /// Like [`TxnGenerator::new`], but fresh insert keys start in a
    /// per-band region far above the loaded key space. Concurrent drivers
    /// give every thread its own band so generators never collide on
    /// inserted keys.
    pub fn new_with_insert_band(spec: WorkloadSpec, band: u64) -> TxnGenerator {
        spec.mix.validate();
        assert!(spec.key_space > 0);
        assert!(spec.txn_ops > 0);
        let zipf = match spec.dist {
            KeyDist::Uniform => None,
            KeyDist::Zipf(theta) => Some(Zipf::new(spec.key_space, theta)),
        };
        let rng = StdRng::seed_from_u64(spec.seed);
        let next_insert_key = spec.key_space.saturating_add(band << 40);
        TxnGenerator { spec, rng, zipf, version: 0, next_insert_key, live_inserted: Vec::new() }
    }

    fn pick_key(&mut self) -> Key {
        match &self.zipf {
            None => self.rng.gen_range(0..self.spec.key_space),
            Some(z) => {
                // Scramble ranks so hot keys scatter across pages (rank 0
                // hot-spotting one leaf would under-state index traffic).
                let rank = z.sample(&mut self.rng);
                rank.wrapping_mul(0x5851_F42D_4C95_7F2D) % self.spec.key_space
            }
        }
    }

    /// Generate the next transaction's operations.
    pub fn next_txn(&mut self) -> Vec<Op> {
        let mut ops = Vec::with_capacity(self.spec.txn_ops);
        for _ in 0..self.spec.txn_ops {
            let roll: u8 = self.rng.gen_range(0..100);
            let mix = self.spec.mix;
            let op = if roll < mix.update_pct {
                self.version += 1;
                let key = self.pick_key();
                Op::Update {
                    key,
                    value: deterministic_value(key, self.version, self.spec.value_size),
                }
            } else if roll < mix.update_pct + mix.read_pct {
                Op::Read { key: self.pick_key() }
            } else if roll < mix.update_pct + mix.read_pct + mix.insert_pct {
                let key = self.next_insert_key;
                self.next_insert_key += 1;
                self.live_inserted.push(key);
                self.version += 1;
                Op::Insert {
                    key,
                    value: deterministic_value(key, self.version, self.spec.value_size),
                }
            } else {
                // Delete a previously inserted key; fall back to an update
                // if none are live (keeps the loaded table intact so runs
                // of different lengths stay comparable).
                match self.live_inserted.pop() {
                    Some(key) => Op::Delete { key },
                    None => {
                        self.version += 1;
                        let key = self.pick_key();
                        Op::Update {
                            key,
                            value: deterministic_value(key, self.version, self.spec.value_size),
                        }
                    }
                }
            };
            ops.push(op);
        }
        ops
    }

    /// Updates-per-transaction counted as "updates" by the crash scenario
    /// (every write op counts).
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_ten_uniform_updates() {
        let mut g = TxnGenerator::new(WorkloadSpec::paper_default(1_000, 64, 1));
        let txn = g.next_txn();
        assert_eq!(txn.len(), 10);
        for op in &txn {
            match op {
                Op::Update { key, value } => {
                    assert!(*key < 1_000);
                    assert_eq!(value.len(), 64);
                }
                other => panic!("unexpected op {other:?}"),
            }
        }
    }

    #[test]
    fn determinism_under_seed() {
        let a: Vec<Vec<Op>> = {
            let mut g = TxnGenerator::new(WorkloadSpec::paper_default(100, 16, 9));
            (0..20).map(|_| g.next_txn()).collect()
        };
        let b: Vec<Vec<Op>> = {
            let mut g = TxnGenerator::new(WorkloadSpec::paper_default(100, 16, 9));
            (0..20).map(|_| g.next_txn()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<Vec<Op>> = {
            let mut g = TxnGenerator::new(WorkloadSpec::paper_default(100, 16, 10));
            (0..20).map(|_| g.next_txn()).collect()
        };
        assert_ne!(a, c, "different seeds diverge");
    }

    #[test]
    fn mixed_workload_produces_all_kinds() {
        let spec = WorkloadSpec {
            key_space: 500,
            txn_ops: 10,
            mix: OpMix { update_pct: 40, read_pct: 30, insert_pct: 20, delete_pct: 10 },
            dist: KeyDist::Uniform,
            value_size: 8,
            seed: 3,
        };
        let mut g = TxnGenerator::new(spec);
        let mut counts = [0u32; 4];
        for _ in 0..200 {
            for op in g.next_txn() {
                match op {
                    Op::Update { .. } => counts[0] += 1,
                    Op::Read { .. } => counts[1] += 1,
                    Op::Insert { .. } => counts[2] += 1,
                    Op::Delete { .. } => counts[3] += 1,
                }
            }
        }
        assert!(counts.iter().all(|c| *c > 0), "all op kinds appear: {counts:?}");
        // Inserts use fresh keys (no collision with the loaded space).
        let mut g2 = TxnGenerator::new(g.spec().clone());
        for _ in 0..50 {
            for op in g2.next_txn() {
                if let Op::Insert { key, .. } = op {
                    assert!(key >= 500);
                }
            }
        }
    }

    #[test]
    fn deletes_only_target_inserted_keys() {
        let spec = WorkloadSpec {
            key_space: 100,
            txn_ops: 5,
            mix: OpMix { update_pct: 0, read_pct: 0, insert_pct: 50, delete_pct: 50 },
            dist: KeyDist::Uniform,
            value_size: 8,
            seed: 11,
        };
        let mut g = TxnGenerator::new(spec);
        for _ in 0..100 {
            for op in g.next_txn() {
                match op {
                    Op::Delete { key } => assert!(key >= 100, "never deletes loaded rows"),
                    Op::Insert { key, .. } => assert!(key >= 100),
                    Op::Update { key, .. } => assert!(key < 100, "fallback update"),
                    Op::Read { .. } => {}
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "sum to 100")]
    fn bad_mix_rejected() {
        let spec = WorkloadSpec {
            mix: OpMix { update_pct: 50, read_pct: 0, insert_pct: 0, delete_pct: 0 },
            ..WorkloadSpec::paper_default(10, 8, 0)
        };
        let _ = TxnGenerator::new(spec);
    }
}
