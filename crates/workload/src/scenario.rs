//! The controlled-crash driver (§5.2).
//!
//! "Unless otherwise stated, a workload runs for double the time needed to
//! fill the cache ... we crash the server when 10 checkpoints have been
//! taken, 40000 updates have been seen since the last checkpoint, and 100
//! updates have been seen since the last Δ/BW-log record. ... The crash
//! happens shortly before a checkpoint is taken, which is the worst case
//! for redo recovery."

use crate::gen::{Op, TxnGenerator};
use lr_common::{Error, Result};
use lr_core::{CrashSnapshot, Engine, ShadowDb, DEFAULT_TABLE};

/// Crash-scenario parameters.
#[derive(Clone, Debug)]
pub struct CrashScenario {
    /// Write operations per checkpoint interval (the paper's ci).
    pub updates_per_checkpoint: u64,
    /// Checkpoints before the final interval.
    pub checkpoints_before_crash: u64,
    /// Write operations between the last forced Δ/BW record and the crash
    /// (the log tail).
    pub tail_updates: u64,
    /// Warm the cache: run updates until the cache is full (capped), then
    /// run the same count again. Disable for tiny functional tests.
    pub warm_cache: bool,
}

impl Default for CrashScenario {
    fn default() -> Self {
        CrashScenario {
            updates_per_checkpoint: 4_000,
            checkpoints_before_crash: 10,
            tail_updates: 100,
            warm_cache: true,
        }
    }
}

/// What the run produced, besides the crashed engine.
#[derive(Clone, Debug)]
pub struct ScenarioOutcome {
    pub snapshot: CrashSnapshot,
    /// Write operations executed during warm-up.
    pub warmup_updates: u64,
    /// Write operations executed in the measured phase.
    pub measured_updates: u64,
    /// Transactions committed in total.
    pub txns_committed: u64,
    /// Δ / BW records written during the run (DC stats).
    pub delta_records: u64,
    pub bw_records: u64,
}

/// Execute one transaction against engine + shadow. Returns write-op count.
fn run_txn(engine: &mut Engine, shadow: &mut ShadowDb, gen: &mut TxnGenerator) -> Result<u64> {
    let ops = gen.next_txn();
    let txn = engine.begin()?;
    let mut writes = 0;
    for op in ops {
        match op {
            Op::Update { key, value } => {
                engine.update(txn, key, value.clone())?;
                shadow.stage_put(txn, DEFAULT_TABLE, key, value);
                writes += 1;
            }
            Op::Read { key } => {
                let _ = engine.read(DEFAULT_TABLE, key)?;
            }
            Op::Insert { key, value } => {
                engine.insert(txn, key, value.clone())?;
                shadow.stage_put(txn, DEFAULT_TABLE, key, value);
                writes += 1;
            }
            Op::Delete { key } => {
                engine.delete(txn, key)?;
                shadow.stage_delete(txn, DEFAULT_TABLE, key);
                writes += 1;
            }
        }
    }
    engine.commit(txn)?;
    shadow.commit(txn);
    Ok(writes)
}

/// Drive `engine` (and its `shadow` oracle) to the paper's crash point.
///
/// On return the engine is crashed; the caller picks a recovery method.
/// The shadow has discarded in-flight work and mirrors exactly the
/// committed state recovery must reproduce.
pub fn run_to_crash(
    engine: &mut Engine,
    shadow: &mut ShadowDb,
    gen: &mut TxnGenerator,
    scenario: &CrashScenario,
) -> Result<ScenarioOutcome> {
    let mut txns_committed = 0u64;

    // ---- warm-up: fill the cache, then run that much again ----
    let mut warmup_updates = 0u64;
    if scenario.warm_cache {
        let target = engine.dc().cache_fill_target();
        let cap_iterations = 200u64 * target.max(1) as u64;
        let mut filled_at = 0u64;
        while (engine.dc().pool().len() as u64) < target as u64 {
            warmup_updates += run_txn(engine, shadow, gen)?;
            txns_committed += 1;
            filled_at += 1;
            if filled_at > cap_iterations {
                return Err(Error::RecoveryInvariant(format!(
                    "cache warm-up did not converge: {} / {target} frames",
                    engine.dc().pool().len()
                )));
            }
        }
        let fill_updates = warmup_updates;
        let mut more = 0u64;
        while more < fill_updates {
            more += run_txn(engine, shadow, gen)?;
            txns_committed += 1;
        }
        warmup_updates += more;
        // Start the measured phase from a clean checkpoint so the redo
        // window covers exactly one interval.
        engine.checkpoint()?;
    }

    // ---- measured phase: ci updates per checkpoint, N checkpoints ----
    let ci = scenario.updates_per_checkpoint;
    let mut measured_updates = 0u64;
    for _ in 0..scenario.checkpoints_before_crash {
        let mut in_interval = 0u64;
        while in_interval < ci {
            let w = run_txn(engine, shadow, gen)?;
            in_interval += w;
            measured_updates += w;
        }
        engine.checkpoint()?;
    }

    // ---- final interval: run to ci - tail, force Δ/BW, then the tail ----
    let tail = scenario.tail_updates.min(ci);
    let mut in_interval = 0u64;
    while in_interval + tail < ci {
        let w = run_txn(engine, shadow, gen)?;
        in_interval += w;
        measured_updates += w;
    }
    engine.dc().force_emit();
    let mut tail_done = 0u64;
    while tail_done < tail {
        let w = run_txn(engine, shadow, gen)?;
        tail_done += w;
        measured_updates += w;
    }

    // ---- crash (shortly before checkpoint #N+1 would run) ----
    let dc_stats = engine.dc().stats();
    let snapshot = engine.crash();
    shadow.crash();

    Ok(ScenarioOutcome {
        snapshot,
        warmup_updates,
        measured_updates,
        txns_committed,
        delta_records: dc_stats.delta_records_written,
        bw_records: dc_stats.bw_records_written,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::WorkloadSpec;
    use lr_core::{EngineConfig, RecoveryMethod};

    fn tiny_setup() -> (Engine, ShadowDb, TxnGenerator) {
        let cfg = EngineConfig {
            initial_rows: 2_000,
            pool_pages: 48,
            io_model: lr_common::IoModel::zero(),
            dirty_batch_cap: 16,
            flush_batch_cap: 16,
            ..EngineConfig::default()
        };
        let shadow = ShadowDb::with_initial_rows(&cfg);
        let gen = TxnGenerator::new(WorkloadSpec::paper_default(cfg.initial_rows, 100, 42));
        (Engine::build(cfg).unwrap(), shadow, gen)
    }

    #[test]
    fn scenario_reaches_crash_with_checkpoints_and_tail() {
        let (mut engine, mut shadow, mut gen) = tiny_setup();
        let scenario = CrashScenario {
            updates_per_checkpoint: 200,
            checkpoints_before_crash: 3,
            tail_updates: 20,
            warm_cache: true,
        };
        let out = run_to_crash(&mut engine, &mut shadow, &mut gen, &scenario).unwrap();
        assert!(engine.is_crashed());
        assert!(out.warmup_updates > 0);
        assert!(out.measured_updates >= 3 * 200);
        assert!(out.delta_records > 0, "Δ records were written");
        assert!(out.bw_records > 0, "BW records were written");
        assert!(out.snapshot.dirty_pages > 0, "worst case: dirty cache at crash");
        // 3 measured checkpoints + 1 post-warm-up.
        assert_eq!(engine.checkpoints_taken(), 4);

        // And the state is recoverable + equal to the shadow.
        engine.recover(RecoveryMethod::Log1).unwrap();
        shadow.verify_against(&engine).unwrap();
    }

    #[test]
    fn identical_seeds_produce_identical_logs() {
        let run = |seed: u64| {
            let cfg = EngineConfig {
                initial_rows: 1_000,
                pool_pages: 32,
                io_model: lr_common::IoModel::zero(),
                ..EngineConfig::default()
            };
            let mut shadow = ShadowDb::with_initial_rows(&cfg);
            let mut gen =
                TxnGenerator::new(WorkloadSpec::paper_default(cfg.initial_rows, 50, seed));
            let mut engine = Engine::build(cfg).unwrap();
            let scenario = CrashScenario {
                updates_per_checkpoint: 100,
                checkpoints_before_crash: 2,
                tail_updates: 10,
                warm_cache: false,
            };
            run_to_crash(&mut engine, &mut shadow, &mut gen, &scenario).unwrap();
            let wal = engine.wal();
            let bytes = wal.lock().byte_len();
            let records = wal.lock().record_count();
            (bytes, records)
        };
        assert_eq!(run(7), run(7), "same seed, same log");
        assert_ne!(run(7), run(8), "different seed, different log");
    }
}
