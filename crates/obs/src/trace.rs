//! Structured trace journal: lock-free rings of fixed-size typed events.
//!
//! Emission is wait-free for the producer: an event is stamped with a
//! globally monotonic sequence number, a small per-thread id and a
//! microsecond timestamp, then pushed into one of a fixed set of bounded
//! lock-free rings (threads hash to a ring, so one thread's events stay
//! FIFO within its ring). A full ring **drops** the event and counts it
//! in [`TraceSink::dropped_events`] — tracing never blocks the engine.
//!
//! [`TraceSink::drain`] merges all rings into one globally ordered
//! timeline (sorted by sequence number); [`TraceSink::drain_json`]
//! renders it as JSON lines for offline analysis.

use crate::json::{self, Json};
use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Recovery phases that appear in [`EventKind::RecoveryPhaseStart`] /
/// [`EventKind::RecoveryPhaseEnd`] span events.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RecoveryPhase {
    /// Analysis pass (DPT construction; "DC redo" for logical methods).
    Analysis,
    /// Structure-modification redo (serialized SMO barrier when parallel).
    SmoRedo,
    /// Index-page preload (Log2 only).
    IndexPreload,
    /// The redo pass proper — emitted once per redo worker when parallel.
    Redo,
    /// Post-redo volatile-structure rebuild (`DcApi::finish_redo`).
    IndexRebuild,
    /// Transactional undo of loser transactions.
    Undo,
}

impl RecoveryPhase {
    /// Stable lower-case name used in the JSON rendering.
    pub fn name(self) -> &'static str {
        match self {
            RecoveryPhase::Analysis => "analysis",
            RecoveryPhase::SmoRedo => "smo_redo",
            RecoveryPhase::IndexPreload => "index_preload",
            RecoveryPhase::Redo => "redo",
            RecoveryPhase::IndexRebuild => "index_rebuild",
            RecoveryPhase::Undo => "undo",
        }
    }
}

/// One fixed-size typed journal event. All payloads are plain scalars so
/// events are `Copy` and ring slots never own heap memory.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A transaction began.
    TxnBegin {
        /// Transaction id.
        txn: u64,
    },
    /// A transaction committed (its commit record is stable).
    TxnCommit {
        /// Transaction id.
        txn: u64,
    },
    /// A transaction aborted (rollback complete).
    TxnAbort {
        /// Transaction id.
        txn: u64,
    },
    /// A lock request lost under the no-wait policy.
    LockConflict {
        /// Requesting transaction.
        txn: u64,
        /// Table holding the contended key.
        table: u64,
        /// The contended key.
        key: u64,
    },
    /// A group-commit leader forced the log.
    GroupCommitForce {
        /// Commits covered by this force (leader + piggybacked).
        batch: u64,
        /// Highest LSN made stable.
        lsn: u64,
    },
    /// A committer found its LSN already stable (piggybacked on an
    /// earlier force).
    GroupCommitPiggyback {
        /// The commit LSN that was already covered.
        lsn: u64,
    },
    /// A page was fetched into the buffer pool (miss path).
    PageFetch {
        /// Page id.
        pid: u64,
        /// Simulated microseconds the caller stalled for the fetch.
        stall_us: u64,
    },
    /// A frame was evicted.
    PageEvict {
        /// Page id.
        pid: u64,
        /// Whether the frame required a flush first.
        dirty: bool,
    },
    /// A dirty page was written back.
    PageFlush {
        /// Page id.
        pid: u64,
    },
    /// A retired frame's memory was recycled after its epoch drained.
    FrameRecycle {
        /// Page id the frame last held.
        pid: u64,
    },
    /// An optimistic (OLC) read or write attempt restarted after
    /// version validation failed.
    OlcRestart {
        /// Page whose version check failed.
        pid: u64,
        /// True for the write-prepare path, false for reads.
        write: bool,
    },
    /// An optimistic attempt gave up and fell back to the latched path.
    OlcFallback {
        /// True for the write-prepare path, false for reads.
        write: bool,
    },
    /// The global frame-reclamation epoch advanced.
    EpochAdvance {
        /// New epoch value.
        epoch: u64,
        /// True when advanced eagerly to unblock reclamation.
        forced: bool,
    },
    /// A checkpoint began.
    CheckpointBegin {
        /// Begin-checkpoint LSN.
        lsn: u64,
    },
    /// A checkpoint completed.
    CheckpointEnd {
        /// Begin-checkpoint LSN of the completed checkpoint.
        lsn: u64,
    },
    /// One background cleaner (lazywriter) sweep finished.
    CleanerTick {
        /// Pages flushed by this sweep.
        pages_flushed: u64,
    },
    /// One background log-compactor sweep finished (log-structured
    /// backend).
    CompactorTick {
        /// Cold log segments reclaimed by this sweep.
        segments: u64,
    },
    /// A recovery phase started on one worker (worker 0 = the serial
    /// pipeline or the coordinating thread).
    RecoveryPhaseStart {
        /// Which phase.
        phase: RecoveryPhase,
        /// Worker index within the phase.
        worker: u64,
    },
    /// A recovery phase finished on one worker.
    RecoveryPhaseEnd {
        /// Which phase.
        phase: RecoveryPhase,
        /// Worker index within the phase.
        worker: u64,
        /// Simulated microseconds of busy time for this worker/phase.
        busy_us: u64,
    },
    /// A request frame arrived at the DC server.
    WireRequest {
        /// Client-stamped request id.
        req_id: u64,
        /// Request opcode (wire tag).
        op: u64,
        /// Framed request size in bytes.
        bytes: u64,
    },
    /// A reply frame left the DC server.
    WireReply {
        /// Request id this reply answers.
        req_id: u64,
        /// Request opcode (wire tag).
        op: u64,
        /// Framed reply size in bytes.
        bytes: u64,
        /// Server-side dispatch latency in real microseconds.
        lat_us: u64,
        /// False when the reply carries a wire error.
        ok: bool,
    },
    /// A transport disconnect reached the DC server.
    WireDisconnect {
        /// Parked guards released by the disconnect cleanup.
        tokens_released: u64,
    },
    /// One parked guard token was released (drop, explicit release, or
    /// disconnect cleanup).
    TokenRelease {
        /// The released token.
        token: u64,
    },
    /// A client connection was admitted by the session server and mapped
    /// to an engine session.
    ClientConnect {
        /// Server-assigned connection id.
        conn: u64,
        /// Sessions active after this admit (this one included).
        active: u64,
    },
    /// A client connection ended (clean close or vanished socket).
    ClientDisconnect {
        /// Server-assigned connection id.
        conn: u64,
        /// True when teardown had to abort an open transaction.
        aborted_txn: bool,
    },
}

/// Every event name that can appear in a journal's `event` field, for
/// schema validation of drained output.
pub const EVENT_NAMES: &[&str] = &[
    "txn_begin",
    "txn_commit",
    "txn_abort",
    "lock_conflict",
    "group_commit_force",
    "group_commit_piggyback",
    "page_fetch",
    "page_evict",
    "page_flush",
    "frame_recycle",
    "olc_restart",
    "olc_fallback",
    "epoch_advance",
    "checkpoint_begin",
    "checkpoint_end",
    "cleaner_tick",
    "compactor_tick",
    "recovery_phase_start",
    "recovery_phase_end",
    "wire_request",
    "wire_reply",
    "wire_disconnect",
    "token_release",
    "client_connect",
    "client_disconnect",
];

impl EventKind {
    /// Stable snake-case name used as the `event` field of the JSON
    /// rendering (always a member of [`EVENT_NAMES`]).
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::TxnBegin { .. } => "txn_begin",
            EventKind::TxnCommit { .. } => "txn_commit",
            EventKind::TxnAbort { .. } => "txn_abort",
            EventKind::LockConflict { .. } => "lock_conflict",
            EventKind::GroupCommitForce { .. } => "group_commit_force",
            EventKind::GroupCommitPiggyback { .. } => "group_commit_piggyback",
            EventKind::PageFetch { .. } => "page_fetch",
            EventKind::PageEvict { .. } => "page_evict",
            EventKind::PageFlush { .. } => "page_flush",
            EventKind::FrameRecycle { .. } => "frame_recycle",
            EventKind::OlcRestart { .. } => "olc_restart",
            EventKind::OlcFallback { .. } => "olc_fallback",
            EventKind::EpochAdvance { .. } => "epoch_advance",
            EventKind::CheckpointBegin { .. } => "checkpoint_begin",
            EventKind::CheckpointEnd { .. } => "checkpoint_end",
            EventKind::CleanerTick { .. } => "cleaner_tick",
            EventKind::CompactorTick { .. } => "compactor_tick",
            EventKind::RecoveryPhaseStart { .. } => "recovery_phase_start",
            EventKind::RecoveryPhaseEnd { .. } => "recovery_phase_end",
            EventKind::WireRequest { .. } => "wire_request",
            EventKind::WireReply { .. } => "wire_reply",
            EventKind::WireDisconnect { .. } => "wire_disconnect",
            EventKind::TokenRelease { .. } => "token_release",
            EventKind::ClientConnect { .. } => "client_connect",
            EventKind::ClientDisconnect { .. } => "client_disconnect",
        }
    }

    /// Payload fields as `(name, value)` pairs, in declaration order.
    pub fn fields(&self) -> Vec<(&'static str, Json)> {
        match *self {
            EventKind::TxnBegin { txn }
            | EventKind::TxnCommit { txn }
            | EventKind::TxnAbort { txn } => vec![("txn", txn.into())],
            EventKind::LockConflict { txn, table, key } => {
                vec![("txn", txn.into()), ("table", table.into()), ("key", key.into())]
            }
            EventKind::GroupCommitForce { batch, lsn } => {
                vec![("batch", batch.into()), ("lsn", lsn.into())]
            }
            EventKind::GroupCommitPiggyback { lsn } => vec![("lsn", lsn.into())],
            EventKind::PageFetch { pid, stall_us } => {
                vec![("pid", pid.into()), ("stall_us", stall_us.into())]
            }
            EventKind::PageEvict { pid, dirty } => {
                vec![("pid", pid.into()), ("dirty", dirty.into())]
            }
            EventKind::PageFlush { pid } | EventKind::FrameRecycle { pid } => {
                vec![("pid", pid.into())]
            }
            EventKind::OlcRestart { pid, write } => {
                vec![("pid", pid.into()), ("write", write.into())]
            }
            EventKind::OlcFallback { write } => vec![("write", write.into())],
            EventKind::EpochAdvance { epoch, forced } => {
                vec![("epoch", epoch.into()), ("forced", forced.into())]
            }
            EventKind::CheckpointBegin { lsn } | EventKind::CheckpointEnd { lsn } => {
                vec![("lsn", lsn.into())]
            }
            EventKind::CleanerTick { pages_flushed } => {
                vec![("pages_flushed", pages_flushed.into())]
            }
            EventKind::CompactorTick { segments } => vec![("segments", segments.into())],
            EventKind::RecoveryPhaseStart { phase, worker } => {
                vec![("phase", phase.name().into()), ("worker", worker.into())]
            }
            EventKind::RecoveryPhaseEnd { phase, worker, busy_us } => vec![
                ("phase", phase.name().into()),
                ("worker", worker.into()),
                ("busy_us", busy_us.into()),
            ],
            EventKind::WireRequest { req_id, op, bytes } => {
                vec![("req_id", req_id.into()), ("op", op.into()), ("bytes", bytes.into())]
            }
            EventKind::WireReply { req_id, op, bytes, lat_us, ok } => vec![
                ("req_id", req_id.into()),
                ("op", op.into()),
                ("bytes", bytes.into()),
                ("lat_us", lat_us.into()),
                ("ok", ok.into()),
            ],
            EventKind::WireDisconnect { tokens_released } => {
                vec![("tokens_released", tokens_released.into())]
            }
            EventKind::TokenRelease { token } => vec![("token", token.into())],
            EventKind::ClientConnect { conn, active } => {
                vec![("conn", conn.into()), ("active", active.into())]
            }
            EventKind::ClientDisconnect { conn, aborted_txn } => {
                vec![("conn", conn.into()), ("aborted_txn", aborted_txn.into())]
            }
        }
    }
}

/// One stamped journal entry: the payload plus its global ordering keys.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Globally unique, monotonically assigned sequence number.
    pub seq: u64,
    /// Small dense id of the emitting thread (assigned on first emit).
    pub tid: u64,
    /// Microseconds since the journal was created.
    pub t_us: u64,
    /// The typed payload.
    pub kind: EventKind,
}

impl TraceEvent {
    /// Render as a single-line JSON object:
    /// `{"seq":..,"tid":..,"t_us":..,"event":"<name>", ...payload}`.
    pub fn to_json(&self) -> Json {
        let mut obj = Json::obj()
            .with("seq", self.seq.into())
            .with("tid", self.tid.into())
            .with("t_us", self.t_us.into())
            .with("event", self.kind.name().into());
        for (k, v) in self.kind.fields() {
            obj.push(k, v);
        }
        obj
    }
}

/// Validate one drained JSON line against the journal schema: it must
/// parse, carry numeric `seq`/`tid`/`t_us`, and name a catalogued event.
pub fn validate_journal_line(line: &str) -> Result<(), String> {
    let v = json::parse(line)?;
    for key in ["seq", "tid", "t_us"] {
        v.get(key).and_then(Json::as_u64).ok_or(format!("missing numeric field {key:?}"))?;
    }
    let name = v.get("event").and_then(Json::as_str).ok_or("missing string field \"event\"")?;
    if !EVENT_NAMES.contains(&name) {
        return Err(format!("unknown event name {name:?}"));
    }
    Ok(())
}

const SHARDS: usize = 16;

/// Bounded MPMC ring (Vyukov-style): each slot carries a sequence word
/// that encodes whether it is free for the current producer lap or holds
/// a value for the current consumer lap. Producers never wait — a full
/// ring rejects the push.
struct Ring {
    slots: Box<[Slot]>,
    mask: usize,
    head: AtomicUsize,
    tail: AtomicUsize,
    dropped: AtomicU64,
}

struct Slot {
    seq: AtomicUsize,
    value: UnsafeCell<MaybeUninit<TraceEvent>>,
}

// Slots are only read after the slot's `seq` word publishes them
// (acquire/release pairs below), so sharing across threads is sound.
unsafe impl Sync for Ring {}
unsafe impl Send for Ring {}

impl Ring {
    fn new(capacity: usize) -> Ring {
        let cap = capacity.next_power_of_two().max(8);
        let slots = (0..cap)
            .map(|i| Slot {
                seq: AtomicUsize::new(i),
                value: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Ring {
            slots,
            mask: cap - 1,
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Push without blocking; a full ring drops the event.
    fn push(&self, ev: TraceEvent) -> bool {
        let mut pos = self.head.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            let diff = seq as isize - pos as isize;
            if diff == 0 {
                match self.head.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        unsafe { (*slot.value.get()).write(ev) };
                        slot.seq.store(pos.wrapping_add(1), Ordering::Release);
                        return true;
                    }
                    Err(current) => pos = current,
                }
            } else if diff < 0 {
                // The slot still holds an unconsumed event from a full
                // lap ago: the ring is full. Count and drop.
                self.dropped.fetch_add(1, Ordering::Relaxed);
                return false;
            } else {
                pos = self.head.load(Ordering::Relaxed);
            }
        }
    }

    /// Pop the oldest event, if any.
    fn pop(&self) -> Option<TraceEvent> {
        let mut pos = self.tail.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            let diff = seq as isize - pos.wrapping_add(1) as isize;
            if diff == 0 {
                match self.tail.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        let ev = unsafe { (*slot.value.get()).assume_init() };
                        slot.seq.store(pos.wrapping_add(self.mask + 1), Ordering::Release);
                        return Some(ev);
                    }
                    Err(current) => pos = current,
                }
            } else if diff < 0 {
                return None;
            } else {
                pos = self.tail.load(Ordering::Relaxed);
            }
        }
    }
}

struct Shared {
    rings: [Ring; SHARDS],
    seq: AtomicU64,
    epoch: Instant,
}

static NEXT_TID: AtomicU64 = AtomicU64::new(0);
thread_local! {
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
}

/// Handle to the trace journal. Cloning is cheap (an `Arc` clone); a
/// disabled sink ([`TraceSink::disabled`], also `Default`) makes
/// [`TraceSink::emit`] a branch-and-return no-op, so instrumented code
/// paths pay nothing when tracing is off.
#[derive(Clone, Default)]
pub struct TraceSink(Option<Arc<Shared>>);

impl TraceSink {
    /// A no-op sink: every emit returns immediately, drains are empty.
    pub fn disabled() -> TraceSink {
        TraceSink(None)
    }

    /// An enabled journal holding roughly `capacity` events across its
    /// internal rings (rounded up; minimum a few hundred).
    pub fn enabled(capacity: usize) -> TraceSink {
        let per_shard = (capacity / SHARDS).max(32);
        let rings = std::array::from_fn(|_| Ring::new(per_shard));
        TraceSink(Some(Arc::new(Shared { rings, seq: AtomicU64::new(0), epoch: Instant::now() })))
    }

    /// Whether events are being journaled.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Record one event. Wait-free; drops (and counts) on ring overflow.
    #[inline]
    pub fn emit(&self, kind: EventKind) {
        if let Some(shared) = &self.0 {
            let tid = TID.with(|t| *t);
            let ev = TraceEvent {
                seq: shared.seq.fetch_add(1, Ordering::Relaxed),
                tid,
                t_us: shared.epoch.elapsed().as_micros() as u64,
                kind,
            };
            shared.rings[(tid as usize) % SHARDS].push(ev);
        }
    }

    /// Events dropped so far because a ring was full.
    pub fn dropped_events(&self) -> u64 {
        match &self.0 {
            Some(shared) => shared.rings.iter().map(|r| r.dropped.load(Ordering::Relaxed)).sum(),
            None => 0,
        }
    }

    /// Drain every ring and merge into one globally ordered timeline
    /// (ascending sequence number). Emitters may keep running; events
    /// emitted during the drain land in the next one.
    pub fn drain(&self) -> Vec<TraceEvent> {
        let mut events = Vec::new();
        if let Some(shared) = &self.0 {
            for ring in &shared.rings {
                while let Some(ev) = ring.pop() {
                    events.push(ev);
                }
            }
            events.sort_unstable_by_key(|e| e.seq);
        }
        events
    }

    /// [`TraceSink::drain`] rendered as JSON lines (one event per line).
    pub fn drain_json(&self) -> String {
        let mut out = String::new();
        for ev in self.drain() {
            out.push_str(&ev.to_json().render());
            out.push('\n');
        }
        out
    }
}

impl std::fmt::Debug for TraceSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceSink").field("enabled", &self.is_enabled()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_is_a_noop() {
        let sink = TraceSink::disabled();
        sink.emit(EventKind::TxnBegin { txn: 1 });
        assert!(!sink.is_enabled());
        assert!(sink.drain().is_empty());
        assert_eq!(sink.dropped_events(), 0);
        assert_eq!(sink.drain_json(), "");
    }

    #[test]
    fn concurrent_emitters_preserve_per_thread_order() {
        let sink = TraceSink::enabled(1 << 16);
        let threads = 4;
        let per_thread = 2_000u64;
        std::thread::scope(|s| {
            for t in 0..threads {
                let sink = sink.clone();
                s.spawn(move || {
                    for i in 0..per_thread {
                        sink.emit(EventKind::TxnBegin { txn: t * per_thread + i });
                    }
                });
            }
        });
        let events = sink.drain();
        assert_eq!(events.len(), (threads * per_thread) as usize);
        assert_eq!(sink.dropped_events(), 0);

        // Globally merged and monotonically sequenced.
        for pair in events.windows(2) {
            assert!(pair[0].seq < pair[1].seq, "drain must be sorted by seq");
        }

        // Per-thread payloads appear in emission order.
        let mut last_payload: std::collections::HashMap<u64, u64> = Default::default();
        for ev in &events {
            let EventKind::TxnBegin { txn } = ev.kind else { panic!("unexpected kind") };
            if let Some(prev) = last_payload.insert(txn / per_thread, txn) {
                assert!(prev < txn, "thread {} out of order: {prev} then {txn}", txn / per_thread);
            }
        }
    }

    #[test]
    fn overflow_drops_instead_of_blocking() {
        // Tiny journal: SHARDS rings of the minimum size.
        let sink = TraceSink::enabled(1);
        for i in 0..100_000 {
            sink.emit(EventKind::PageFlush { pid: i });
        }
        assert!(sink.dropped_events() > 0, "overflow must count drops");
        let drained = sink.drain();
        assert!(!drained.is_empty());
        assert!(drained.len() < 100_000);
        // The ring recovered its capacity: new events land again.
        sink.emit(EventKind::PageFlush { pid: 7 });
        assert_eq!(sink.drain().len(), 1);
    }

    #[test]
    fn drain_json_lines_validate_against_schema() {
        let sink = TraceSink::enabled(1024);
        sink.emit(EventKind::TxnBegin { txn: 9 });
        sink.emit(EventKind::GroupCommitForce { batch: 3, lsn: 40 });
        sink.emit(EventKind::RecoveryPhaseEnd {
            phase: RecoveryPhase::Redo,
            worker: 1,
            busy_us: 5,
        });
        sink.emit(EventKind::WireReply { req_id: 1, op: 3, bytes: 64, lat_us: 12, ok: true });
        let text = sink.drain_json();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        for line in lines {
            validate_journal_line(line).unwrap();
        }
        assert!(validate_journal_line("{\"seq\":0}").is_err());
        assert!(
            validate_journal_line("{\"seq\":0,\"tid\":0,\"t_us\":0,\"event\":\"nope\"}").is_err()
        );
    }

    #[test]
    fn every_event_name_is_catalogued() {
        let samples = [
            EventKind::TxnBegin { txn: 0 },
            EventKind::TxnCommit { txn: 0 },
            EventKind::TxnAbort { txn: 0 },
            EventKind::LockConflict { txn: 0, table: 0, key: 0 },
            EventKind::GroupCommitForce { batch: 0, lsn: 0 },
            EventKind::GroupCommitPiggyback { lsn: 0 },
            EventKind::PageFetch { pid: 0, stall_us: 0 },
            EventKind::PageEvict { pid: 0, dirty: false },
            EventKind::PageFlush { pid: 0 },
            EventKind::FrameRecycle { pid: 0 },
            EventKind::OlcRestart { pid: 0, write: false },
            EventKind::OlcFallback { write: true },
            EventKind::EpochAdvance { epoch: 0, forced: false },
            EventKind::CheckpointBegin { lsn: 0 },
            EventKind::CheckpointEnd { lsn: 0 },
            EventKind::CleanerTick { pages_flushed: 0 },
            EventKind::CompactorTick { segments: 0 },
            EventKind::RecoveryPhaseStart { phase: RecoveryPhase::Analysis, worker: 0 },
            EventKind::RecoveryPhaseEnd { phase: RecoveryPhase::Undo, worker: 0, busy_us: 0 },
            EventKind::WireRequest { req_id: 0, op: 0, bytes: 0 },
            EventKind::WireReply { req_id: 0, op: 0, bytes: 0, lat_us: 0, ok: false },
            EventKind::WireDisconnect { tokens_released: 0 },
            EventKind::TokenRelease { token: 0 },
            EventKind::ClientConnect { conn: 0, active: 0 },
            EventKind::ClientDisconnect { conn: 0, aborted_txn: false },
        ];
        assert_eq!(samples.len(), EVENT_NAMES.len());
        for ev in samples {
            assert!(EVENT_NAMES.contains(&ev.name()), "{} missing from catalogue", ev.name());
        }
    }
}
