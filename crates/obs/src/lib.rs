//! # lr-obs
//!
//! Unified observability layer for the logical-recovery engine: a
//! low-overhead structured **trace journal** ([`trace`]), a **metrics
//! registry** unifying every stats struct behind one snapshot type
//! ([`metrics`]), a dependency-free **JSON** value/parser ([`json`]) and
//! the shared **bench summary** exporter ([`bench`]).
//!
//! The paper's evaluation is measurement-driven (redo time, DPT size,
//! stall behaviour — §5.3, Appendices B–C); this crate is the engine's
//! single measurement channel. Design constraints:
//!
//! - **Cheap when off.** A disabled [`TraceSink`] is a `None` check per
//!   emit — no allocation, no locks, no syscalls.
//! - **Never blocks when on.** Events go into bounded lock-free rings;
//!   overflow increments [`TraceSink::dropped_events`] instead of
//!   stalling the emitting thread.
//! - **Reconstructable.** Every event carries a globally unique,
//!   monotonically assigned sequence number, a thread id and a
//!   microsecond timestamp, so a drained journal merges into one
//!   time-ordered timeline (e.g. the recovery per-worker span view).

#![warn(missing_docs)]

pub mod bench;
pub mod json;
pub mod metrics;
pub mod trace;

pub use bench::BenchSummary;
pub use json::Json;
pub use metrics::{MetricValue, MetricsSnapshot};
pub use trace::{EventKind, RecoveryPhase, TraceEvent, TraceSink};
