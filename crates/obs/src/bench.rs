//! Shared machine-readable bench summary exporter.
//!
//! Every bench writes one `BENCH_<name>.json` file with the same
//! top-level schema, so the perf trajectory can be tracked across PRs
//! with one harvester:
//!
//! ```json
//! {"bench":"throughput","schema_version":1,
//!  "config":{"keys":50000,...},
//!  "points":[{"threads":1,"txn_per_sec":1234.0,...},...],
//!  "gates":[{"gate":"remote_margin","ratio":0.97,"margin":0.9,"pass":true}]}
//! ```

use crate::json::Json;
use std::path::PathBuf;

/// Builder for one bench run's `BENCH_<name>.json` summary.
#[derive(Clone, Debug)]
pub struct BenchSummary {
    name: String,
    config: Json,
    points: Vec<Json>,
    gates: Vec<Json>,
}

impl BenchSummary {
    /// Start a summary for the bench called `name`.
    pub fn new(name: &str) -> BenchSummary {
        BenchSummary {
            name: name.to_string(),
            config: Json::obj(),
            points: Vec::new(),
            gates: Vec::new(),
        }
    }

    /// Record one configuration knob (key space, force latency, ...).
    pub fn config(&mut self, key: &str, value: Json) {
        self.config.push(key, value);
    }

    /// Record one measurement point (an object of named values).
    pub fn point(&mut self, point: Json) {
        self.points.push(point);
    }

    /// Record one pass/fail gate outcome (an object; include a `gate`
    /// name and a `pass` boolean).
    pub fn gate(&mut self, gate: Json) {
        self.gates.push(gate);
    }

    /// The whole summary as one JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .with("bench", Json::from(self.name.as_str()))
            .with("schema_version", Json::from(1u64))
            .with("config", self.config.clone())
            .with("points", Json::Arr(self.points.clone()))
            .with("gates", Json::Arr(self.gates.clone()))
    }

    /// The path this summary writes to: `BENCH_<name>.json` under
    /// `$LR_BENCH_OUT` (default: the current directory).
    pub fn path(&self) -> PathBuf {
        let dir = std::env::var("LR_BENCH_OUT").unwrap_or_else(|_| ".".to_string());
        PathBuf::from(dir).join(format!("BENCH_{}.json", self.name))
    }

    /// Write the summary file and return its path.
    pub fn write(&self) -> std::io::Result<PathBuf> {
        let path = self.path();
        std::fs::write(&path, self.to_json().render() + "\n")?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_renders_schema() {
        let mut s = BenchSummary::new("throughput");
        s.config("keys", Json::from(1000u64));
        s.point(Json::obj().with("threads", 2u64.into()).with("txn_per_sec", 99.5.into()));
        s.gate(Json::obj().with("gate", "obs_margin".into()).with("pass", true.into()));
        let v = crate::json::parse(&s.to_json().render()).unwrap();
        assert_eq!(v.get("bench").unwrap().as_str(), Some("throughput"));
        assert_eq!(v.get("schema_version").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("config").unwrap().get("keys").unwrap().as_u64(), Some(1000));
        let Json::Arr(points) = v.get("points").unwrap() else { panic!("points not an array") };
        assert_eq!(points.len(), 1);
        assert_eq!(points[0].get("threads").unwrap().as_u64(), Some(2));
    }

    #[test]
    fn write_lands_in_bench_out_dir() {
        let dir = std::env::temp_dir().join(format!("lr_obs_bench_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::env::set_var("LR_BENCH_OUT", &dir);
        let s = BenchSummary::new("unit");
        let path = s.write().unwrap();
        std::env::remove_var("LR_BENCH_OUT");
        assert!(path.ends_with("BENCH_unit.json"));
        let text = std::fs::read_to_string(&path).unwrap();
        crate::json::parse(text.trim()).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
