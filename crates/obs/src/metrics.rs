//! Unified metrics registry.
//!
//! Every stats struct in the engine (engine, pool, DC, I/O, WAL)
//! flattens into one [`MetricsSnapshot`]: an ordered list of named
//! metrics, each a counter, gauge or histogram. Snapshots support
//! windowed deltas ([`MetricsSnapshot::delta_since`]) and two export
//! formats — Prometheus-style text and JSON lines — plus a text parser
//! used by tests to prove every counter round-trips through the export.

use crate::json::Json;
use lr_common::Histogram;

/// One metric's value.
// Histogram dominates the size, but a snapshot is a few dozen values
// built once per sample; boxing would cost an allocation per histogram
// on every sample for no measurable win.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug, PartialEq)]
pub enum MetricValue {
    /// Monotonically increasing tally; deltas subtract.
    Counter(u64),
    /// Point-in-time level (pool fill, dirty pages); deltas keep the
    /// later value.
    Gauge(f64),
    /// Log₂-bucketed distribution; deltas subtract per bucket.
    Hist(Histogram),
}

impl MetricValue {
    /// Kind name used in exports (`counter` / `gauge` / `histogram`).
    pub fn kind(&self) -> &'static str {
        match self {
            MetricValue::Counter(_) => "counter",
            MetricValue::Gauge(_) => "gauge",
            MetricValue::Hist(_) => "histogram",
        }
    }
}

/// An ordered, named collection of metric values — the engine's whole
/// measurement surface at one instant.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Microsecond timestamp the snapshot was taken at (engine-defined
    /// epoch; 0 when untimed).
    pub at_us: u64,
    /// The metrics, in registration order. Names are
    /// `<subsystem>_<field>`, e.g. `pool_hits`.
    pub metrics: Vec<(String, MetricValue)>,
}

impl MetricsSnapshot {
    /// An empty snapshot.
    pub fn new() -> MetricsSnapshot {
        MetricsSnapshot::default()
    }

    /// Add one counter.
    pub fn push_counter(&mut self, name: &str, value: u64) {
        self.metrics.push((name.to_string(), MetricValue::Counter(value)));
    }

    /// Add one gauge.
    pub fn push_gauge(&mut self, name: &str, value: f64) {
        self.metrics.push((name.to_string(), MetricValue::Gauge(value)));
    }

    /// Add one histogram.
    pub fn push_hist(&mut self, name: &str, value: Histogram) {
        self.metrics.push((name.to_string(), MetricValue::Hist(value)));
    }

    /// Add every `(name, value)` counter under `prefix` — the bridge
    /// from the `counter_struct!`-generated `counters()` enumerations,
    /// so exports can't drift from the struct definitions.
    pub fn push_counters(&mut self, prefix: &str, counters: &[(&'static str, u64)]) {
        for (name, value) in counters {
            self.push_counter(&format!("{prefix}_{name}"), *value);
        }
    }

    /// Add every `(name, hist)` histogram under `prefix` (the
    /// `counter_struct!` `histograms()` bridge).
    pub fn push_histograms(&mut self, prefix: &str, hists: &[(&'static str, &Histogram)]) {
        for (name, hist) in hists {
            self.push_hist(&format!("{prefix}_{name}"), (*hist).clone());
        }
    }

    /// Look up a metric by name.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.metrics.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    /// Counter value by name (None if absent or not a counter).
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.get(name) {
            Some(MetricValue::Counter(v)) => Some(*v),
            _ => None,
        }
    }

    /// Windowed difference `self - earlier`, matched by name: counters
    /// and histograms subtract, gauges keep the later value, metrics
    /// absent from `earlier` pass through unchanged.
    pub fn delta_since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let metrics = self
            .metrics
            .iter()
            .map(|(name, value)| {
                let delta = match (value, earlier.get(name)) {
                    (MetricValue::Counter(now), Some(MetricValue::Counter(then))) => {
                        MetricValue::Counter(now.wrapping_sub(*then))
                    }
                    (MetricValue::Hist(now), Some(MetricValue::Hist(then))) => {
                        MetricValue::Hist(now.delta_since(then))
                    }
                    (v, _) => v.clone(),
                };
                (name.clone(), delta)
            })
            .collect();
        MetricsSnapshot { at_us: self.at_us, metrics }
    }

    /// Prometheus-style text exposition. Every metric name gets an
    /// `lr_` namespace prefix, a `# TYPE` line, and — for histograms —
    /// cumulative `_bucket{le="..."}` lines plus `_sum`/`_count`/`_max`.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.metrics {
            match value {
                MetricValue::Counter(v) => {
                    out.push_str(&format!("# TYPE lr_{name} counter\nlr_{name} {v}\n"));
                }
                MetricValue::Gauge(v) => {
                    out.push_str(&format!("# TYPE lr_{name} gauge\nlr_{name} {v}\n"));
                }
                MetricValue::Hist(h) => {
                    out.push_str(&format!("# TYPE lr_{name} histogram\n"));
                    let mut cumulative = 0;
                    for (lower, count) in h.nonzero_buckets() {
                        cumulative += count;
                        // Upper bound of the log2 bucket [lower, 2*lower).
                        let le = if lower == 0 { 1 } else { lower * 2 - 1 };
                        out.push_str(&format!("lr_{name}_bucket{{le=\"{le}\"}} {cumulative}\n"));
                    }
                    out.push_str(&format!("lr_{name}_bucket{{le=\"+Inf\"}} {}\n", h.count()));
                    out.push_str(&format!("lr_{name}_sum {}\n", h.sum()));
                    out.push_str(&format!("lr_{name}_count {}\n", h.count()));
                    out.push_str(&format!("lr_{name}_max {}\n", h.max()));
                }
            }
        }
        out
    }

    /// JSON-lines exposition: one object per metric, e.g.
    /// `{"name":"pool_hits","kind":"counter","value":123}`. Histograms
    /// carry `count`/`sum`/`max`/`mean` plus sparse `buckets` pairs.
    pub fn to_json_lines(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.metrics {
            let mut obj = Json::obj()
                .with("name", Json::from(name.as_str()))
                .with("kind", Json::from(value.kind()));
            match value {
                MetricValue::Counter(v) => obj.push("value", (*v).into()),
                MetricValue::Gauge(v) => obj.push("value", (*v).into()),
                MetricValue::Hist(h) => {
                    obj.push("count", h.count().into());
                    obj.push("sum", h.sum().into());
                    obj.push("max", h.max().into());
                    obj.push("mean", h.mean().into());
                    let buckets = h
                        .nonzero_buckets()
                        .into_iter()
                        .map(|(lo, c)| Json::Arr(vec![lo.into(), c.into()]))
                        .collect();
                    obj.push("buckets", Json::Arr(buckets));
                }
            }
            out.push_str(&obj.render());
            out.push('\n');
        }
        out
    }

    /// Parse the plain samples out of a [`MetricsSnapshot::to_prometheus`]
    /// exposition: every `lr_<name> <value>` line (comments and
    /// histogram sub-series keep their suffixed names). The test suite
    /// uses this to prove each counter survives the export byte-exactly.
    pub fn parse_prometheus(text: &str) -> Vec<(String, f64)> {
        text.lines()
            .filter(|l| !l.starts_with('#') && !l.is_empty())
            .filter_map(|l| {
                let (name, value) = l.split_once(' ')?;
                let name = name.strip_prefix("lr_")?;
                // Histogram bucket series carry labels; keep the raw name.
                let name = name.split('{').next()?;
                Some((name.to_string(), value.parse().ok()?))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MetricsSnapshot {
        let mut h = Histogram::new();
        h.record(3);
        h.record(700);
        let mut s = MetricsSnapshot::new();
        s.push_counter("pool_hits", 10);
        s.push_counter("pool_misses", 4);
        s.push_gauge("engine_dirty_pages", 2.0);
        s.push_hist("dc_read_restart_hist", h);
        s
    }

    #[test]
    fn delta_subtracts_counters_keeps_gauges() {
        let earlier = sample();
        let mut later = earlier.clone();
        later.metrics[0].1 = MetricValue::Counter(25);
        later.metrics[2].1 = MetricValue::Gauge(9.0);
        let d = later.delta_since(&earlier);
        assert_eq!(d.counter("pool_hits"), Some(15));
        assert_eq!(d.counter("pool_misses"), Some(0));
        assert_eq!(d.get("engine_dirty_pages"), Some(&MetricValue::Gauge(9.0)));
    }

    #[test]
    fn prometheus_roundtrips_counters_and_gauges() {
        let s = sample();
        let text = s.to_prometheus();
        let parsed = MetricsSnapshot::parse_prometheus(&text);
        assert!(parsed.contains(&("pool_hits".to_string(), 10.0)));
        assert!(parsed.contains(&("pool_misses".to_string(), 4.0)));
        assert!(parsed.contains(&("engine_dirty_pages".to_string(), 2.0)));
        assert!(parsed.contains(&("dc_read_restart_hist_count".to_string(), 2.0)));
        assert!(parsed.contains(&("dc_read_restart_hist_sum".to_string(), 703.0)));
        assert!(text.contains("# TYPE lr_pool_hits counter"));
        assert!(text.contains("lr_dc_read_restart_hist_bucket{le=\"+Inf\"} 2"));
    }

    #[test]
    fn json_lines_parse_and_carry_kinds() {
        let s = sample();
        for line in s.to_json_lines().lines() {
            let v = crate::json::parse(line).unwrap();
            assert!(v.get("name").is_some());
            let kind = v.get("kind").unwrap().as_str().unwrap();
            assert!(["counter", "gauge", "histogram"].contains(&kind));
            if kind == "histogram" {
                assert!(v.get("count").unwrap().as_u64().is_some());
            } else {
                assert!(v.get("value").is_some());
            }
        }
    }

    #[test]
    fn push_counters_bridges_counter_structs() {
        let io = lr_common::IoStats { page_writes: 6, ..Default::default() };
        let mut s = MetricsSnapshot::new();
        s.push_counters("io", &io.counters());
        assert_eq!(s.counter("io_page_writes"), Some(6));
        assert_eq!(s.metrics.len(), lr_common::IoStats::COUNTER_NAMES.len());
    }
}
