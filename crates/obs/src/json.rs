//! Minimal JSON value, writer and parser.
//!
//! The workspace builds fully offline with no serialization crates, so
//! the exporters hand-roll their JSON through this module. It covers
//! exactly what the observability layer needs: objects with ordered
//! keys, arrays, numbers (`u64`/`i64`/`f64`), strings, booleans and
//! null — plus a strict parser so tests can schema-validate drained
//! journals and bench summaries.

use std::fmt;

/// A JSON value. Object keys keep insertion order so rendered output is
/// deterministic.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number; integers up to 2^53 render exactly.
    Num(f64),
    /// A string (rendered with `"` / `\` / control-character escapes).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for an object builder.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Append a key/value pair (object values only; no-op otherwise).
    pub fn push(&mut self, key: &str, value: Json) {
        if let Json::Obj(pairs) = self {
            pairs.push((key.to_string(), value));
        }
    }

    /// Builder-style [`Json::push`].
    pub fn with(mut self, key: &str, value: Json) -> Json {
        self.push(key, value);
        self
    }

    /// Look up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value as `u64`, if this is a non-negative number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Render to a compact single-line string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(*n, out),
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Num(v as f64)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

fn write_num(n: f64, out: &mut String) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9.0e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse a JSON document. Strict: trailing garbage, unterminated
/// strings and malformed numbers are errors (returned as a message with
/// a byte offset).
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                let value = parse_value(b, pos)?;
                pairs.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b't') if b[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if b[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if b[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(_) => {
            let start = *pos;
            while *pos < b.len()
                && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
            text.parse::<f64>().map(Json::Num).map_err(|_| format!("bad number at byte {start}"))
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("bad \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Copy one UTF-8 scalar (multi-byte sequences pass through).
                let start = *pos;
                *pos += 1;
                while *pos < b.len() && (b[*pos] & 0xC0) == 0x80 {
                    *pos += 1;
                }
                out.push_str(std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_parse_roundtrip() {
        let v = Json::obj()
            .with("name", Json::from("trace \"journal\"\n"))
            .with("count", Json::from(42u64))
            .with("ratio", Json::from(0.5))
            .with("ok", Json::from(true))
            .with("none", Json::Null)
            .with("list", Json::Arr(vec![Json::from(1u64), Json::from(2u64)]));
        let text = v.render();
        let back = parse(&text).unwrap();
        assert_eq!(back, v);
        assert_eq!(back.get("count").unwrap().as_u64(), Some(42));
        assert_eq!(back.get("name").unwrap().as_str(), Some("trace \"journal\"\n"));
    }

    #[test]
    fn integers_render_exactly() {
        assert_eq!(Json::from(1u64 << 50).render(), format!("{}", 1u64 << 50));
        assert_eq!(Json::from(0u64).render(), "0");
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse("{\"a\":1} trailing").is_err());
        assert!(parse("{\"a\"").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("[1,]").is_err());
    }

    #[test]
    fn parser_accepts_nested() {
        let v = parse(r#"{"a":{"b":[1,2,{"c":null}]},"d":-1.5e3}"#).unwrap();
        assert_eq!(v.get("d").unwrap().as_f64(), Some(-1500.0));
    }
}
