//! Log composition statistics.
//!
//! The paper argues the Δ-record overhead is "a very small part of the log"
//! (§5.1) — this module makes that measurable: per-kind record counts and
//! byte volumes over any scan window, used by the fig2c harness and by
//! tests asserting the overhead stays small.

use crate::record::{LogPayload, LogRecord};

/// Per-kind counts and encoded-body bytes.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LogStats {
    pub txn_control_records: u64,
    pub txn_control_bytes: u64,
    pub data_op_records: u64,
    pub data_op_bytes: u64,
    pub clr_records: u64,
    pub clr_bytes: u64,
    pub smo_records: u64,
    pub smo_bytes: u64,
    pub delta_records: u64,
    pub delta_bytes: u64,
    pub bw_records: u64,
    pub bw_bytes: u64,
    pub checkpoint_records: u64,
    pub checkpoint_bytes: u64,
}

impl LogStats {
    /// Tally a window of records.
    pub fn from_records(records: &[LogRecord]) -> LogStats {
        let mut s = LogStats::default();
        for rec in records {
            let bytes = rec.payload.encode().len() as u64;
            match &rec.payload {
                LogPayload::TxnBegin { .. }
                | LogPayload::TxnCommit { .. }
                | LogPayload::TxnAbort { .. } => {
                    s.txn_control_records += 1;
                    s.txn_control_bytes += bytes;
                }
                LogPayload::Clr { .. } => {
                    s.clr_records += 1;
                    s.clr_bytes += bytes;
                }
                p if p.is_data_op() => {
                    s.data_op_records += 1;
                    s.data_op_bytes += bytes;
                }
                LogPayload::Smo(_) => {
                    s.smo_records += 1;
                    s.smo_bytes += bytes;
                }
                LogPayload::Delta(_) => {
                    s.delta_records += 1;
                    s.delta_bytes += bytes;
                }
                LogPayload::Bw { .. } => {
                    s.bw_records += 1;
                    s.bw_bytes += bytes;
                }
                LogPayload::BeginCheckpoint
                | LogPayload::EndCheckpoint { .. }
                | LogPayload::AriesCheckpoint { .. }
                | LogPayload::Rssp { .. } => {
                    s.checkpoint_records += 1;
                    s.checkpoint_bytes += bytes;
                }
                _ => unreachable!("all payload kinds covered"),
            }
        }
        s
    }

    pub fn total_records(&self) -> u64 {
        self.txn_control_records
            + self.data_op_records
            + self.clr_records
            + self.smo_records
            + self.delta_records
            + self.bw_records
            + self.checkpoint_records
    }

    pub fn total_bytes(&self) -> u64 {
        self.txn_control_bytes
            + self.data_op_bytes
            + self.clr_bytes
            + self.smo_bytes
            + self.delta_bytes
            + self.bw_bytes
            + self.checkpoint_bytes
    }

    /// The paper's "modest DC logging" metric: Δ bytes as a fraction of
    /// all log bytes.
    pub fn delta_byte_fraction(&self) -> f64 {
        if self.total_bytes() == 0 {
            0.0
        } else {
            self.delta_bytes as f64 / self.total_bytes() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::DeltaRecord;
    use lr_common::{Lsn, PageId, TableId, TxnId};

    fn rec(payload: LogPayload) -> LogRecord {
        LogRecord { lsn: Lsn(1), payload }
    }

    #[test]
    fn tallies_every_kind() {
        let records = vec![
            rec(LogPayload::TxnBegin { txn: TxnId(1) }),
            rec(LogPayload::Update {
                txn: TxnId(1),
                table: TableId(1),
                key: 1,
                pid: PageId(1),
                prev_lsn: Lsn::NULL,
                before: vec![0; 50],
                after: vec![0; 50],
            }),
            rec(LogPayload::Clr {
                txn: TxnId(1),
                table: TableId(1),
                key: 1,
                pid: PageId(1),
                undo_next: Lsn::NULL,
                action: crate::record::ClrAction::RemoveKey,
            }),
            rec(LogPayload::Smo(crate::record::SmoRecord { pages: vec![], new_root: None })),
            rec(LogPayload::Delta(DeltaRecord::default())),
            rec(LogPayload::Bw { written_set: vec![], fw_lsn: Lsn::NULL }),
            rec(LogPayload::BeginCheckpoint),
            rec(LogPayload::TxnCommit { txn: TxnId(1) }),
        ];
        let s = LogStats::from_records(&records);
        assert_eq!(s.txn_control_records, 2);
        assert_eq!(s.data_op_records, 1);
        assert_eq!(s.clr_records, 1);
        assert_eq!(s.smo_records, 1);
        assert_eq!(s.delta_records, 1);
        assert_eq!(s.bw_records, 1);
        assert_eq!(s.checkpoint_records, 1);
        assert_eq!(s.total_records(), 8);
        assert!(s.data_op_bytes > 100, "update carries both images");
        assert!(s.total_bytes() > 0);
        assert!(s.delta_byte_fraction() < 0.2);
    }

    #[test]
    fn empty_window() {
        let s = LogStats::from_records(&[]);
        assert_eq!(s.total_records(), 0);
        assert_eq!(s.delta_byte_fraction(), 0.0);
    }
}
