//! The log manager.
//!
//! An append-only byte buffer of framed records. LSNs are byte offsets
//! (starting at [`LOG_ORIGIN`], so [`lr_common::Lsn::NULL`] never collides
//! with a record). The manager tracks the **stable LSN** — the paper's
//! "end of stable log" that the TC advertises to the DC via EOSL — and
//! supports crash truncation, forward scans, random access for undo chains,
//! and log-page arithmetic for the recovery I/O model.

use crate::record::{LogPayload, LogRecord};
use crate::shared::SharedWal;
use lr_common::{Error, Lsn, Result};

/// LSN of the first record: the log begins with an 8-byte magic header.
pub const LOG_ORIGIN: Lsn = Lsn(8);

const MAGIC: &[u8; 8] = b"LRWAL\0\0\x01";
/// Frame header: u32 body length + u32 CRC-32 of the body.
const FRAME_HEADER: usize = 8;

/// In-memory append-only log with explicit stability tracking.
pub struct Wal {
    buf: Vec<u8>,
    /// Sorted record start offsets, for random access and scans.
    index: Vec<u64>,
    stable: Lsn,
    /// Bytes per simulated log page (I/O accounting granularity).
    log_page_size: usize,
}

impl Wal {
    /// An empty log. `log_page_size` is used only for page-count accounting.
    pub fn new(log_page_size: usize) -> Wal {
        assert!(log_page_size >= 512, "log page size unreasonably small");
        Wal { buf: MAGIC.to_vec(), index: Vec::new(), stable: LOG_ORIGIN, log_page_size }
    }

    /// A shareable handle.
    pub fn new_shared(log_page_size: usize) -> SharedWal {
        SharedWal::new(Wal::new(log_page_size))
    }

    /// Append a record; returns its LSN. The record is *not* stable until
    /// [`Wal::make_stable`] (or [`Wal::make_all_stable`]) covers it.
    pub fn append(&mut self, payload: &LogPayload) -> Lsn {
        self.append_encoded(&payload.encode())
    }

    /// Append a pre-encoded record body (the buffered append path: callers
    /// serialize the payload *outside* the log latch and pay only the frame
    /// memcpy inside it).
    pub fn append_encoded(&mut self, body: &[u8]) -> Lsn {
        let lsn = Lsn(self.buf.len() as u64);
        self.buf.extend_from_slice(&(body.len() as u32).to_le_bytes());
        self.buf.extend_from_slice(&lr_common::crc32(body).to_le_bytes());
        self.buf.extend_from_slice(body);
        self.index.push(lsn.0);
        lsn
    }

    /// First LSN past the end of the log (the next record's LSN).
    pub fn end_lsn(&self) -> Lsn {
        Lsn(self.buf.len() as u64)
    }

    /// Number of records currently in the log.
    pub fn record_count(&self) -> usize {
        self.index.len()
    }

    /// Total log size in bytes.
    pub fn byte_len(&self) -> u64 {
        self.buf.len() as u64
    }

    /// The stable LSN: every record with `lsn < stable_lsn` survives a crash.
    pub fn stable_lsn(&self) -> Lsn {
        self.stable
    }

    /// Advance the stable LSN to `lsn` (monotonic; clamped to the log end).
    pub fn make_stable(&mut self, lsn: Lsn) {
        let end = self.end_lsn();
        self.stable = self.stable.max(lsn.min(end));
    }

    /// Force the whole log stable (e.g. a commit that flushes the tail).
    pub fn make_all_stable(&mut self) {
        self.stable = self.end_lsn();
    }

    /// Crash: discard every record not covered by the stable LSN.
    ///
    /// Returns the number of records lost. After truncation the stable LSN
    /// equals the log end.
    pub fn truncate_to_stable(&mut self) -> usize {
        let cut = self.index.partition_point(|&off| off < self.stable.0);
        let lost = self.index.len() - cut;
        if lost > 0 {
            let new_len = self.index[cut] as usize;
            self.buf.truncate(new_len);
            self.index.truncate(cut);
        }
        self.stable = self.end_lsn();
        lost
    }

    fn decode_at_index(&self, i: usize) -> Result<LogRecord> {
        let off = self.index[i] as usize;
        let lsn = Lsn(off as u64);
        let len = u32::from_le_bytes(self.buf[off..off + 4].try_into().expect("length")) as usize;
        let crc = u32::from_le_bytes(self.buf[off + 4..off + 8].try_into().expect("crc"));
        let body = &self.buf[off + FRAME_HEADER..off + FRAME_HEADER + len];
        if lr_common::crc32(body) != crc {
            return Err(Error::LogCorrupt { lsn, reason: "CRC mismatch".to_string() });
        }
        let payload = LogPayload::decode(body)
            .map_err(|e| Error::LogCorrupt { lsn, reason: e.to_string() })?;
        Ok(LogRecord { lsn, payload })
    }

    /// Random-access read of the record at exactly `lsn`.
    pub fn read_at(&self, lsn: Lsn) -> Result<LogRecord> {
        match self.index.binary_search(&lsn.0) {
            Ok(i) => self.decode_at_index(i),
            Err(_) => {
                Err(Error::LogCorrupt { lsn, reason: "no record starts at this LSN".to_string() })
            }
        }
    }

    /// Borrowing forward cursor over all records with `lsn >= from`, in
    /// log order, decoding lazily — one record materialized at a time.
    ///
    /// Analysis/dispatch scans that only need a single forward pass (the
    /// recovery dispatcher, checkpoint discovery) use this instead of
    /// [`Wal::scan_from`], which clones every decoded record into a `Vec`
    /// up front.
    pub fn records_from(&self, from: Lsn) -> RecordCursor<'_> {
        let start = self.index.partition_point(|&off| off < from.0);
        RecordCursor { wal: self, next: start }
    }

    /// All records with `lsn >= from`, in log order, decoded eagerly.
    ///
    /// Recovery's redo passes re-read the window several times (the
    /// paper's analysis/redo/undo structure), so materializing it once is
    /// the right trade there; single-pass scans should prefer
    /// [`Wal::records_from`].
    pub fn scan_from(&self, from: Lsn) -> Result<Vec<LogRecord>> {
        self.records_from(from).collect()
    }

    /// Number of log pages spanned by the byte range `[from, to)` — the
    /// sequential-read cost of a recovery scan.
    pub fn log_pages_between(&self, from: Lsn, to: Lsn) -> u64 {
        if to <= from {
            return 0;
        }
        let first_page = from.0 / self.log_page_size as u64;
        let last_page = (to.0.saturating_sub(1)) / self.log_page_size as u64;
        last_page - first_page + 1
    }

    /// Locate the last *completed* checkpoint: the most recent
    /// `EndCheckpoint` on the stable log, returning `(bckpt_lsn, eckpt_lsn)`.
    ///
    /// Per §3.2, the redo scan starts at that `bCkpt`: pages updated before
    /// it were flushed by the checkpoint, so recovery starts with an empty
    /// DPT as of that point.
    pub fn last_completed_checkpoint(&self) -> Result<Option<(Lsn, Lsn)>> {
        for i in (0..self.index.len()).rev() {
            let rec = self.decode_at_index(i)?;
            if let LogPayload::EndCheckpoint { bckpt_lsn, .. } = rec.payload {
                return Ok(Some((bckpt_lsn, rec.lsn)));
            }
        }
        Ok(None)
    }

    /// Re-derive the usable end of the log by scanning frames from the
    /// origin and validating lengths and CRCs — what a real restart does
    /// with a log file whose tail may be torn. Truncates at the first
    /// invalid frame and returns the number of records dropped.
    ///
    /// This subsumes stability tracking on restart: records past the torn
    /// point never happened.
    pub fn recover_torn_tail(&mut self) -> usize {
        let mut off = MAGIC.len();
        let mut good = Vec::new();
        while off + FRAME_HEADER <= self.buf.len() {
            let len = u32::from_le_bytes(self.buf[off..off + 4].try_into().expect("length bytes"))
                as usize;
            let crc = u32::from_le_bytes(self.buf[off + 4..off + 8].try_into().expect("crc bytes"));
            let body_start = off + FRAME_HEADER;
            let Some(body_end) = body_start.checked_add(len) else { break };
            if body_end > self.buf.len() {
                break; // torn mid-frame
            }
            if lr_common::crc32(&self.buf[body_start..body_end]) != crc {
                break; // torn/corrupt body
            }
            good.push(off as u64);
            off = body_end;
        }
        let dropped = self.index.len().saturating_sub(good.len());
        self.buf.truncate(off.min(self.buf.len()));
        // Only keep index entries the scan re-validated.
        self.index = good;
        self.stable = self.end_lsn();
        dropped
    }

    /// Persist the log's bytes to a file (durability point for a
    /// process-restart; see `Wal::load`).
    pub fn save(&self, path: &std::path::Path) -> Result<()> {
        std::fs::write(path, &self.buf).map_err(Error::Io)
    }

    /// Load a log file written by [`Wal::save`] — or torn by a crash.
    /// Validates the magic header, then rebuilds the record index with the
    /// same CRC frame scan a restart uses, dropping any torn tail.
    pub fn load(path: &std::path::Path, log_page_size: usize) -> Result<Wal> {
        let buf = std::fs::read(path).map_err(Error::Io)?;
        if buf.len() < MAGIC.len() || &buf[..MAGIC.len()] != MAGIC {
            return Err(Error::LogCorrupt {
                lsn: Lsn::NULL,
                reason: "bad or missing log magic header".to_string(),
            });
        }
        let mut wal = Wal { buf, index: Vec::new(), stable: LOG_ORIGIN, log_page_size };
        wal.recover_torn_tail();
        Ok(wal)
    }

    /// Tear the physical tail of the log: drop the last `bytes` bytes
    /// regardless of frame boundaries — what a crash mid-write does to a
    /// real log file. Follow with [`Wal::recover_torn_tail`].
    pub fn tear(&mut self, bytes: u64) {
        let keep = self.buf.len().saturating_sub(bytes as usize).max(MAGIC.len());
        self.buf.truncate(keep);
        self.index.retain(|&off| off < keep as u64);
        self.stable = self.stable.min(self.end_lsn());
    }

    /// Deliberately flip a byte (tests of torn-tail handling only).
    #[doc(hidden)]
    pub fn corrupt_byte_for_testing(&mut self, offset: usize) {
        if offset < self.buf.len() {
            self.buf[offset] ^= 0xFF;
        }
    }

    /// Clone the log's durable contents into an independent `Wal` (harness
    /// forking; see `Disk::fork`).
    pub fn fork_data(&self) -> Wal {
        Wal {
            buf: self.buf.clone(),
            index: self.index.clone(),
            stable: self.stable,
            log_page_size: self.log_page_size,
        }
    }

    /// The `EndCheckpoint` record for the checkpoint bracketed at
    /// `bckpt_lsn`, if completed.
    pub fn end_checkpoint_for(&self, bckpt_lsn: Lsn) -> Result<Option<LogRecord>> {
        for rec in self.records_from(bckpt_lsn) {
            let rec = rec?;
            if let LogPayload::EndCheckpoint { bckpt_lsn: b, .. } = rec.payload {
                if b == bckpt_lsn {
                    return Ok(Some(rec));
                }
            }
        }
        Ok(None)
    }
}

/// Borrowing forward iterator over a [`Wal`]'s records; see
/// [`Wal::records_from`]. Each `next()` decodes exactly one frame; nothing
/// is buffered or cloned ahead of the cursor.
pub struct RecordCursor<'a> {
    wal: &'a Wal,
    next: usize,
}

impl RecordCursor<'_> {
    /// Records remaining ahead of the cursor.
    pub fn remaining(&self) -> usize {
        self.wal.index.len() - self.next
    }
}

impl Iterator for RecordCursor<'_> {
    type Item = Result<LogRecord>;

    fn next(&mut self) -> Option<Result<LogRecord>> {
        if self.next >= self.wal.index.len() {
            return None;
        }
        let rec = self.wal.decode_at_index(self.next);
        self.next += 1;
        Some(rec)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.remaining();
        (n, Some(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lr_common::TxnId;

    fn begin(t: u64) -> LogPayload {
        LogPayload::TxnBegin { txn: TxnId(t) }
    }

    #[test]
    fn append_assigns_increasing_lsns() {
        let mut wal = Wal::new(4096);
        let a = wal.append(&begin(1));
        let b = wal.append(&begin(2));
        assert_eq!(a, LOG_ORIGIN);
        assert!(b > a);
        assert_eq!(wal.record_count(), 2);
    }

    #[test]
    fn read_at_and_scan() {
        let mut wal = Wal::new(4096);
        let a = wal.append(&begin(1));
        let b = wal.append(&LogPayload::BeginCheckpoint);
        let c = wal.append(&begin(3));
        assert_eq!(wal.read_at(b).unwrap().payload, LogPayload::BeginCheckpoint);
        assert!(wal.read_at(Lsn(a.0 + 1)).is_err(), "misaligned LSN rejected");
        let recs = wal.scan_from(b).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].lsn, b);
        assert_eq!(recs[1].lsn, c);
        assert_eq!(wal.scan_from(Lsn::NULL).unwrap().len(), 3);
        assert_eq!(wal.scan_from(wal.end_lsn()).unwrap().len(), 0);
    }

    #[test]
    fn cursor_matches_eager_scan_and_decodes_lazily() {
        let mut wal = Wal::new(4096);
        let lsns: Vec<Lsn> = (0..10).map(|t| wal.append(&begin(t))).collect();
        // Full scan parity.
        let eager = wal.scan_from(Lsn::NULL).unwrap();
        let lazy: Vec<_> = wal.records_from(Lsn::NULL).map(|r| r.unwrap()).collect();
        assert_eq!(eager, lazy);
        // Mid-log start, size hints, and partial consumption.
        let mut cur = wal.records_from(lsns[7]);
        assert_eq!(cur.remaining(), 3);
        assert_eq!(cur.size_hint(), (3, Some(3)));
        assert_eq!(cur.next().unwrap().unwrap().lsn, lsns[7]);
        assert_eq!(cur.remaining(), 2);
        // A corrupt frame surfaces as an Err item, not a panic.
        wal.corrupt_byte_for_testing(lsns[9].0 as usize + 9);
        let tail: Vec<_> = wal.records_from(lsns[9]).collect();
        assert_eq!(tail.len(), 1);
        assert!(tail[0].is_err());
    }

    #[test]
    fn stability_and_crash_truncation() {
        let mut wal = Wal::new(4096);
        let _a = wal.append(&begin(1));
        let b = wal.append(&begin(2));
        wal.make_stable(b); // covers record a only (b starts at offset b)
        let _c = wal.append(&begin(3));
        let lost = wal.truncate_to_stable();
        assert_eq!(lost, 2, "records b and c were volatile");
        assert_eq!(wal.record_count(), 1);
        assert_eq!(wal.stable_lsn(), wal.end_lsn());
    }

    #[test]
    fn make_all_stable_preserves_everything() {
        let mut wal = Wal::new(4096);
        for t in 0..10 {
            wal.append(&begin(t));
        }
        wal.make_all_stable();
        assert_eq!(wal.truncate_to_stable(), 0);
        assert_eq!(wal.record_count(), 10);
    }

    #[test]
    fn stable_lsn_is_monotonic_and_clamped() {
        let mut wal = Wal::new(4096);
        wal.append(&begin(1));
        wal.make_stable(Lsn(1_000_000));
        assert_eq!(wal.stable_lsn(), wal.end_lsn());
        wal.make_stable(Lsn(5));
        assert_eq!(wal.stable_lsn(), wal.end_lsn(), "never regresses");
    }

    #[test]
    fn log_page_accounting() {
        let wal = Wal::new(1024);
        assert_eq!(wal.log_pages_between(Lsn(0), Lsn(1)), 1);
        assert_eq!(wal.log_pages_between(Lsn(0), Lsn(1024)), 1);
        assert_eq!(wal.log_pages_between(Lsn(0), Lsn(1025)), 2);
        assert_eq!(wal.log_pages_between(Lsn(1023), Lsn(1025)), 2);
        assert_eq!(wal.log_pages_between(Lsn(2048), Lsn(2048)), 0);
        assert_eq!(wal.log_pages_between(Lsn(10), Lsn(5)), 0);
    }

    #[test]
    fn checkpoint_discovery() {
        let mut wal = Wal::new(4096);
        assert!(wal.last_completed_checkpoint().unwrap().is_none());
        let b1 = wal.append(&LogPayload::BeginCheckpoint);
        wal.append(&LogPayload::EndCheckpoint { bckpt_lsn: b1, active_txns: vec![] });
        let b2 = wal.append(&LogPayload::BeginCheckpoint);
        // b2 has no eCkpt yet: the last *completed* checkpoint is b1.
        let (bc, _ec) = wal.last_completed_checkpoint().unwrap().unwrap();
        assert_eq!(bc, b1);
        assert!(wal.end_checkpoint_for(b2).unwrap().is_none());
        let e2 = wal.append(&LogPayload::EndCheckpoint { bckpt_lsn: b2, active_txns: vec![] });
        let (bc, ec) = wal.last_completed_checkpoint().unwrap().unwrap();
        assert_eq!(bc, b2);
        assert_eq!(ec, e2);
    }

    #[test]
    fn truncation_respects_partial_checkpoint() {
        // A bCkpt whose eCkpt was lost in the crash must not count.
        let mut wal = Wal::new(4096);
        let b1 = wal.append(&LogPayload::BeginCheckpoint);
        wal.append(&LogPayload::EndCheckpoint { bckpt_lsn: b1, active_txns: vec![] });
        wal.make_all_stable();
        let b2 = wal.append(&LogPayload::BeginCheckpoint);
        let e2 = wal.append(&LogPayload::EndCheckpoint { bckpt_lsn: b2, active_txns: vec![] });
        wal.make_stable(e2); // eCkpt record itself NOT stable (starts at e2)
        wal.truncate_to_stable();
        let (bc, _) = wal.last_completed_checkpoint().unwrap().unwrap();
        assert_eq!(bc, b1);
    }
}

#[cfg(test)]
mod torn_tail_tests {
    use super::*;
    use lr_common::TxnId;

    fn begin(t: u64) -> LogPayload {
        LogPayload::TxnBegin { txn: TxnId(t) }
    }

    #[test]
    fn crc_detects_corrupt_body() {
        let mut wal = Wal::new(4096);
        let a = wal.append(&begin(1));
        // Flip a byte inside record a's body.
        wal.corrupt_byte_for_testing(a.0 as usize + 9);
        assert!(matches!(wal.read_at(a), Err(Error::LogCorrupt { .. })));
    }

    #[test]
    fn torn_tail_scan_keeps_valid_prefix() {
        let mut wal = Wal::new(4096);
        let lsns: Vec<Lsn> = (0..10).map(|t| wal.append(&begin(t))).collect();
        // Corrupt record 7's body: records 7, 8, 9 become unreachable (a
        // torn frame ends the scan).
        wal.corrupt_byte_for_testing(lsns[7].0 as usize + 9);
        let dropped = wal.recover_torn_tail();
        assert_eq!(dropped, 3);
        assert_eq!(wal.record_count(), 7);
        let recs = wal.scan_from(Lsn::NULL).unwrap();
        assert_eq!(recs.len(), 7);
        assert_eq!(recs.last().unwrap().payload, begin(6));
        // The log is append-able again after the repair.
        let new = wal.append(&begin(99));
        assert_eq!(wal.read_at(new).unwrap().payload, begin(99));
    }

    #[test]
    fn torn_mid_frame_length_is_handled() {
        let mut wal = Wal::new(4096);
        wal.append(&begin(1));
        let b = wal.append(&begin(2));
        // Simulate a torn final sector: chop bytes off the last frame.
        let cut = b.0 as usize + 5;
        wal.buf.truncate(cut);
        let dropped = wal.recover_torn_tail();
        assert_eq!(dropped, 1);
        assert_eq!(wal.record_count(), 1);
    }

    #[test]
    fn clean_log_survives_scan_unchanged() {
        let mut wal = Wal::new(4096);
        for t in 0..20 {
            wal.append(&begin(t));
        }
        let before = wal.scan_from(Lsn::NULL).unwrap();
        assert_eq!(wal.recover_torn_tail(), 0);
        assert_eq!(wal.scan_from(Lsn::NULL).unwrap(), before);
    }
}
