//! # lr-wal
//!
//! The **common log** of the paper's prototype (§5.1): one integrated log
//! carrying
//!
//! * the TC's transactional records — logical `(table, key, before, after)`
//!   content with the PID **piggybacked** exactly as the paper's prototype
//!   keeps SQL Server's PIDs on the log ("we do not remove PIDs from the SQL
//!   Server log records, but ignore them during logical recovery"),
//! * the DC's records — SMO system transactions, **Δ-log records** (§4.1)
//!   and **BW-log records** (§3.3),
//! * checkpoint brackets (`bCkpt`/`eCkpt`), the DC's durable RSSP note, and
//!   the ARIES-style checkpoint snapshot used by the §3.1 ablation.
//!
//! Because every recovery method replays the *same serialized bytes*, the
//! side-by-side comparison is honest: physiological methods read the PIDs,
//! logical methods ignore them, and both pay for the same log volume.

pub mod log;
pub mod record;
pub mod shared;
pub mod stats;

pub use log::{RecordCursor, Wal, LOG_ORIGIN};
pub use record::{ClrAction, DeltaRecord, LogPayload, LogRecord, SmoRecord};
pub use shared::{GroupCommitStats, SharedWal, WalGuard};
pub use stats::LogStats;
