//! Log record taxonomy and binary framing.
//!
//! Records are encoded as `[u32 body-len][u8 kind][body]`; the record's LSN
//! is its byte offset in the log, so LSNs are dense, ordered, and directly
//! convertible to log-page counts for the I/O cost accounting.

use lr_common::codec::{CodecError, Decoder, Encoder};
use lr_common::{Key, Lsn, PageId, TableId, TxnId, Value};

/// A decoded record paired with its LSN.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LogRecord {
    pub lsn: Lsn,
    pub payload: LogPayload,
}

/// The action a compensation log record (CLR) re-applies.
///
/// CLRs are redo-only: undo of an update restores the before-image, undo of
/// an insert removes the key, undo of a delete re-inserts the old record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ClrAction {
    /// Restore this value (compensates an update).
    RestoreValue(Value),
    /// Remove the key (compensates an insert).
    RemoveKey,
    /// Re-insert this value (compensates a delete).
    InsertValue(Value),
}

/// A structure-modification operation logged by the DC as a redo-only
/// system transaction (§2.1: "SQL Server increases concurrency for B-tree
/// SMOs by using system transactions").
///
/// We log full after-images of the pages the SMO rewrote. SMOs are rare
/// relative to updates (§2.1), so the extra volume is negligible, and image
/// logging makes SMO redo trivially idempotent via the pLSN test.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SmoRecord {
    /// After-images of every page the SMO rewrote: `(pid, image)`.
    pub pages: Vec<(PageId, Vec<u8>)>,
    /// If the SMO grew the tree, the table whose root moved and the new root.
    pub new_root: Option<(TableId, PageId)>,
}

/// The DC's Δ-log record (§4.1):
/// `(DirtySet, WrittenSet, FW-LSN, FirstDirty, TC-LSN)`.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct DeltaRecord {
    /// PIDs of pages made dirty since the previous Δ-log record, in
    /// dirtying order. Correctness requires *every* dirtied page appear
    /// (unlike BW records, which may miss flushes).
    pub dirty_set: Vec<PageId>,
    /// Per-dirtying LSNs, parallel to `dirty_set`. Only populated when the
    /// engine runs the Appendix-D.1 "perfect DPT" variant; empty otherwise.
    pub dirty_lsns: Vec<Lsn>,
    /// PIDs whose flush I/O completed during the interval.
    pub written_set: Vec<PageId>,
    /// TC end-of-stable-log captured when the interval's first flush
    /// completed; [`Lsn::NULL`] if no flush occurred.
    pub fw_lsn: Lsn,
    /// Index into `dirty_set` of the first page dirtied after the first
    /// flush; `dirty_set.len()` if none (all entries "before").
    pub first_dirty: u32,
    /// TC end-of-stable-log (eLSN from the latest EOSL) when this record was
    /// written.
    pub tc_lsn: Lsn,
}

/// Everything the common log can carry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LogPayload {
    /// Transaction start.
    TxnBegin { txn: TxnId },
    /// Transaction commit (durable once on the stable log).
    TxnCommit { txn: TxnId },
    /// Transaction abort (rollback completed).
    TxnAbort { txn: TxnId },
    /// A data update. Logical content (`table`, `key`, images) plus the
    /// piggybacked `pid` that only physiological recovery reads.
    Update {
        txn: TxnId,
        table: TableId,
        key: Key,
        /// Physiological piggyback: the page the update landed on.
        pid: PageId,
        /// Previous log record of the same transaction (undo chain).
        prev_lsn: Lsn,
        before: Value,
        after: Value,
    },
    /// A data insert (same piggyback convention).
    Insert { txn: TxnId, table: TableId, key: Key, pid: PageId, prev_lsn: Lsn, value: Value },
    /// A data delete.
    Delete { txn: TxnId, table: TableId, key: Key, pid: PageId, prev_lsn: Lsn, before: Value },
    /// Compensation record written during rollback/undo; redo-only.
    Clr {
        txn: TxnId,
        table: TableId,
        key: Key,
        pid: PageId,
        /// Next record to undo for this transaction (skips compensated work).
        undo_next: Lsn,
        action: ClrAction,
    },
    /// DC structure-modification system transaction (redo-only).
    Smo(SmoRecord),
    /// DC Δ-log record (§4.1) — feeds logical DPT construction.
    Delta(DeltaRecord),
    /// SQL-Server-style Buffer-Write record (§3.3) — `(WrittenSet, FW-LSN)`.
    Bw { written_set: Vec<PageId>, fw_lsn: Lsn },
    /// Checkpoint start marker.
    BeginCheckpoint,
    /// Checkpoint completion: points at its `bCkpt` and snapshots the
    /// transactions active at completion (with their latest LSN) so analysis
    /// can seed the transaction table.
    EndCheckpoint { bckpt_lsn: Lsn, active_txns: Vec<(TxnId, Lsn)> },
    /// ARIES-style checkpoint payload (§3.1 ablation): the runtime-captured
    /// DPT `(pid, rLSN)` pairs.
    AriesCheckpoint { dpt: Vec<(PageId, Lsn)> },
    /// DC's durable note of the redo-scan-start-point it confirmed (RSSP).
    Rssp { rssp_lsn: Lsn },
}

const TAG_TXN_BEGIN: u8 = 1;
const TAG_TXN_COMMIT: u8 = 2;
const TAG_TXN_ABORT: u8 = 3;
const TAG_UPDATE: u8 = 4;
const TAG_INSERT: u8 = 5;
const TAG_DELETE: u8 = 6;
const TAG_CLR: u8 = 7;
const TAG_SMO: u8 = 8;
const TAG_DELTA: u8 = 9;
const TAG_BW: u8 = 10;
const TAG_BEGIN_CKPT: u8 = 11;
const TAG_END_CKPT: u8 = 12;
const TAG_ARIES_CKPT: u8 = 13;
const TAG_RSSP: u8 = 14;

impl LogPayload {
    /// Is this a TC data operation (the records logical redo re-submits)?
    pub fn is_data_op(&self) -> bool {
        matches!(
            self,
            LogPayload::Update { .. }
                | LogPayload::Insert { .. }
                | LogPayload::Delete { .. }
                | LogPayload::Clr { .. }
        )
    }

    /// The piggybacked PID of a data operation (what physiological recovery
    /// reads and logical recovery ignores).
    pub fn data_pid(&self) -> Option<PageId> {
        match self {
            LogPayload::Update { pid, .. }
            | LogPayload::Insert { pid, .. }
            | LogPayload::Delete { pid, .. }
            | LogPayload::Clr { pid, .. } => Some(*pid),
            _ => None,
        }
    }

    /// The transaction a record belongs to, if any.
    pub fn txn(&self) -> Option<TxnId> {
        match self {
            LogPayload::TxnBegin { txn }
            | LogPayload::TxnCommit { txn }
            | LogPayload::TxnAbort { txn }
            | LogPayload::Update { txn, .. }
            | LogPayload::Insert { txn, .. }
            | LogPayload::Delete { txn, .. }
            | LogPayload::Clr { txn, .. } => Some(*txn),
            _ => None,
        }
    }

    /// Serialize the payload body (kind tag + fields, no length prefix).
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::with_capacity(64);
        match self {
            LogPayload::TxnBegin { txn } => {
                e.put_u8(TAG_TXN_BEGIN);
                e.put_txn(*txn);
            }
            LogPayload::TxnCommit { txn } => {
                e.put_u8(TAG_TXN_COMMIT);
                e.put_txn(*txn);
            }
            LogPayload::TxnAbort { txn } => {
                e.put_u8(TAG_TXN_ABORT);
                e.put_txn(*txn);
            }
            LogPayload::Update { txn, table, key, pid, prev_lsn, before, after } => {
                e.put_u8(TAG_UPDATE);
                e.put_txn(*txn);
                e.put_table(*table);
                e.put_key(*key);
                e.put_pid(*pid);
                e.put_lsn(*prev_lsn);
                e.put_bytes(before);
                e.put_bytes(after);
            }
            LogPayload::Insert { txn, table, key, pid, prev_lsn, value } => {
                e.put_u8(TAG_INSERT);
                e.put_txn(*txn);
                e.put_table(*table);
                e.put_key(*key);
                e.put_pid(*pid);
                e.put_lsn(*prev_lsn);
                e.put_bytes(value);
            }
            LogPayload::Delete { txn, table, key, pid, prev_lsn, before } => {
                e.put_u8(TAG_DELETE);
                e.put_txn(*txn);
                e.put_table(*table);
                e.put_key(*key);
                e.put_pid(*pid);
                e.put_lsn(*prev_lsn);
                e.put_bytes(before);
            }
            LogPayload::Clr { txn, table, key, pid, undo_next, action } => {
                e.put_u8(TAG_CLR);
                e.put_txn(*txn);
                e.put_table(*table);
                e.put_key(*key);
                e.put_pid(*pid);
                e.put_lsn(*undo_next);
                match action {
                    ClrAction::RestoreValue(v) => {
                        e.put_u8(0);
                        e.put_bytes(v);
                    }
                    ClrAction::RemoveKey => e.put_u8(1),
                    ClrAction::InsertValue(v) => {
                        e.put_u8(2);
                        e.put_bytes(v);
                    }
                }
            }
            LogPayload::Smo(smo) => {
                e.put_u8(TAG_SMO);
                e.put_u32(smo.pages.len() as u32);
                for (pid, image) in &smo.pages {
                    e.put_pid(*pid);
                    e.put_bytes(image);
                }
                match &smo.new_root {
                    Some((table, root)) => {
                        e.put_u8(1);
                        e.put_table(*table);
                        e.put_pid(*root);
                    }
                    None => e.put_u8(0),
                }
            }
            LogPayload::Delta(d) => {
                e.put_u8(TAG_DELTA);
                e.put_pid_vec(&d.dirty_set);
                e.put_lsn_vec(&d.dirty_lsns);
                e.put_pid_vec(&d.written_set);
                e.put_lsn(d.fw_lsn);
                e.put_u32(d.first_dirty);
                e.put_lsn(d.tc_lsn);
            }
            LogPayload::Bw { written_set, fw_lsn } => {
                e.put_u8(TAG_BW);
                e.put_pid_vec(written_set);
                e.put_lsn(*fw_lsn);
            }
            LogPayload::BeginCheckpoint => e.put_u8(TAG_BEGIN_CKPT),
            LogPayload::EndCheckpoint { bckpt_lsn, active_txns } => {
                e.put_u8(TAG_END_CKPT);
                e.put_lsn(*bckpt_lsn);
                e.put_u32(active_txns.len() as u32);
                for (txn, lsn) in active_txns {
                    e.put_txn(*txn);
                    e.put_lsn(*lsn);
                }
            }
            LogPayload::AriesCheckpoint { dpt } => {
                e.put_u8(TAG_ARIES_CKPT);
                e.put_u32(dpt.len() as u32);
                for (pid, rlsn) in dpt {
                    e.put_pid(*pid);
                    e.put_lsn(*rlsn);
                }
            }
            LogPayload::Rssp { rssp_lsn } => {
                e.put_u8(TAG_RSSP);
                e.put_lsn(*rssp_lsn);
            }
        }
        e.finish()
    }

    /// Decode a payload body produced by [`LogPayload::encode`].
    pub fn decode(bytes: &[u8]) -> Result<LogPayload, CodecError> {
        let mut d = Decoder::new(bytes);
        let tag = d.get_u8()?;
        let payload = match tag {
            TAG_TXN_BEGIN => LogPayload::TxnBegin { txn: d.get_txn()? },
            TAG_TXN_COMMIT => LogPayload::TxnCommit { txn: d.get_txn()? },
            TAG_TXN_ABORT => LogPayload::TxnAbort { txn: d.get_txn()? },
            TAG_UPDATE => LogPayload::Update {
                txn: d.get_txn()?,
                table: d.get_table()?,
                key: d.get_key()?,
                pid: d.get_pid()?,
                prev_lsn: d.get_lsn()?,
                before: d.get_bytes()?,
                after: d.get_bytes()?,
            },
            TAG_INSERT => LogPayload::Insert {
                txn: d.get_txn()?,
                table: d.get_table()?,
                key: d.get_key()?,
                pid: d.get_pid()?,
                prev_lsn: d.get_lsn()?,
                value: d.get_bytes()?,
            },
            TAG_DELETE => LogPayload::Delete {
                txn: d.get_txn()?,
                table: d.get_table()?,
                key: d.get_key()?,
                pid: d.get_pid()?,
                prev_lsn: d.get_lsn()?,
                before: d.get_bytes()?,
            },
            TAG_CLR => {
                let txn = d.get_txn()?;
                let table = d.get_table()?;
                let key = d.get_key()?;
                let pid = d.get_pid()?;
                let undo_next = d.get_lsn()?;
                let action = match d.get_u8()? {
                    0 => ClrAction::RestoreValue(d.get_bytes()?),
                    1 => ClrAction::RemoveKey,
                    2 => ClrAction::InsertValue(d.get_bytes()?),
                    t => return Err(CodecError::BadTag { context: "ClrAction", tag: t }),
                };
                LogPayload::Clr { txn, table, key, pid, undo_next, action }
            }
            TAG_SMO => {
                let n = d.get_u32()? as usize;
                let mut pages = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    let pid = d.get_pid()?;
                    let image = d.get_bytes()?;
                    pages.push((pid, image));
                }
                let new_root = match d.get_u8()? {
                    0 => None,
                    1 => Some((d.get_table()?, d.get_pid()?)),
                    t => return Err(CodecError::BadTag { context: "SmoRecord.new_root", tag: t }),
                };
                LogPayload::Smo(SmoRecord { pages, new_root })
            }
            TAG_DELTA => LogPayload::Delta(DeltaRecord {
                dirty_set: d.get_pid_vec()?,
                dirty_lsns: d.get_lsn_vec()?,
                written_set: d.get_pid_vec()?,
                fw_lsn: d.get_lsn()?,
                first_dirty: d.get_u32()?,
                tc_lsn: d.get_lsn()?,
            }),
            TAG_BW => LogPayload::Bw { written_set: d.get_pid_vec()?, fw_lsn: d.get_lsn()? },
            TAG_BEGIN_CKPT => LogPayload::BeginCheckpoint,
            TAG_END_CKPT => {
                let bckpt_lsn = d.get_lsn()?;
                let n = d.get_u32()? as usize;
                let mut active_txns = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    active_txns.push((d.get_txn()?, d.get_lsn()?));
                }
                LogPayload::EndCheckpoint { bckpt_lsn, active_txns }
            }
            TAG_ARIES_CKPT => {
                let n = d.get_u32()? as usize;
                let mut dpt = Vec::with_capacity(n.min(1 << 20));
                for _ in 0..n {
                    dpt.push((d.get_pid()?, d.get_lsn()?));
                }
                LogPayload::AriesCheckpoint { dpt }
            }
            TAG_RSSP => LogPayload::Rssp { rssp_lsn: d.get_lsn()? },
            t => return Err(CodecError::BadTag { context: "LogPayload", tag: t }),
        };
        d.expect_done()?;
        Ok(payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(p: LogPayload) {
        let bytes = p.encode();
        let back = LogPayload::decode(&bytes).expect("decode");
        assert_eq!(back, p);
    }

    #[test]
    fn all_variants_roundtrip() {
        roundtrip(LogPayload::TxnBegin { txn: TxnId(1) });
        roundtrip(LogPayload::TxnCommit { txn: TxnId(2) });
        roundtrip(LogPayload::TxnAbort { txn: TxnId(3) });
        roundtrip(LogPayload::Update {
            txn: TxnId(4),
            table: TableId(1),
            key: 42,
            pid: PageId(7),
            prev_lsn: Lsn(100),
            before: b"old".to_vec(),
            after: b"new".to_vec(),
        });
        roundtrip(LogPayload::Insert {
            txn: TxnId(5),
            table: TableId(1),
            key: 43,
            pid: PageId(8),
            prev_lsn: Lsn::NULL,
            value: b"v".to_vec(),
        });
        roundtrip(LogPayload::Delete {
            txn: TxnId(6),
            table: TableId(2),
            key: 44,
            pid: PageId(9),
            prev_lsn: Lsn(50),
            before: b"gone".to_vec(),
        });
        for action in [
            ClrAction::RestoreValue(b"x".to_vec()),
            ClrAction::RemoveKey,
            ClrAction::InsertValue(b"y".to_vec()),
        ] {
            roundtrip(LogPayload::Clr {
                txn: TxnId(7),
                table: TableId(1),
                key: 45,
                pid: PageId(10),
                undo_next: Lsn(33),
                action,
            });
        }
        roundtrip(LogPayload::Smo(SmoRecord {
            pages: vec![(PageId(1), vec![1, 2, 3]), (PageId(2), vec![4, 5])],
            new_root: Some((TableId(1), PageId(3))),
        }));
        roundtrip(LogPayload::Smo(SmoRecord { pages: vec![], new_root: None }));
        roundtrip(LogPayload::Delta(DeltaRecord {
            dirty_set: vec![PageId(1), PageId(2), PageId(1)],
            dirty_lsns: vec![Lsn(10), Lsn(20), Lsn(30)],
            written_set: vec![PageId(2)],
            fw_lsn: Lsn(15),
            first_dirty: 2,
            tc_lsn: Lsn(25),
        }));
        roundtrip(LogPayload::Bw { written_set: vec![PageId(3)], fw_lsn: Lsn(5) });
        roundtrip(LogPayload::BeginCheckpoint);
        roundtrip(LogPayload::EndCheckpoint {
            bckpt_lsn: Lsn(77),
            active_txns: vec![(TxnId(1), Lsn(80)), (TxnId(2), Lsn(82))],
        });
        roundtrip(LogPayload::AriesCheckpoint { dpt: vec![(PageId(4), Lsn(60))] });
        roundtrip(LogPayload::Rssp { rssp_lsn: Lsn(99) });
    }

    #[test]
    fn data_op_classification() {
        let upd = LogPayload::Update {
            txn: TxnId(1),
            table: TableId(1),
            key: 1,
            pid: PageId(5),
            prev_lsn: Lsn::NULL,
            before: vec![],
            after: vec![],
        };
        assert!(upd.is_data_op());
        assert_eq!(upd.data_pid(), Some(PageId(5)));
        assert_eq!(upd.txn(), Some(TxnId(1)));
        assert!(!LogPayload::BeginCheckpoint.is_data_op());
        assert_eq!(LogPayload::BeginCheckpoint.data_pid(), None);
        assert_eq!(LogPayload::Rssp { rssp_lsn: Lsn(1) }.txn(), None);
    }

    #[test]
    fn bad_tag_rejected() {
        assert!(matches!(LogPayload::decode(&[200]), Err(CodecError::BadTag { .. })));
        assert!(LogPayload::decode(&[]).is_err());
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut bytes = LogPayload::BeginCheckpoint.encode();
        bytes.push(0xFF);
        assert!(LogPayload::decode(&bytes).is_err());
    }
}
