//! The shared handle to the common log: buffered appends plus group commit.
//!
//! Under a single-owner engine the log was `Arc<Mutex<Wal>>`; with
//! concurrent sessions every commit forcing the log under that one mutex
//! would serialize the whole write path. This handle keeps one latch over
//! the log *buffer* but splits the expensive part — the commit-time force —
//! into a leader/follower protocol (LogBase-style group commit):
//!
//! * **append** pre-encodes the record outside the latch, so the critical
//!   section is an LSN assignment plus a memcpy;
//! * **force_covering(lsn)** first checks the published stable-LSN hint
//!   (lock-free). If a force is already in flight, the caller *waits* for
//!   its publication instead of queueing on the log latch; whoever arrives
//!   first becomes the leader and stabilizes every record appended so far —
//!   one latch acquisition publishes stability for the whole batch.
//!
//! The hint is republished every time a direct-access guard drops, so
//! maintenance paths (crash truncation, torn-tail repair, checkpoints) keep
//! it honest.

use crate::log::Wal;
use crate::record::LogPayload;
use lr_common::Lsn;
use lr_obs::{EventKind, TraceSink};
use parking_lot::{Mutex, MutexGuard};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Group-commit counters (observability for the throughput bench).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GroupCommitStats {
    /// Log forces actually performed (leader path).
    pub forces: u64,
    /// Commits whose force was satisfied by another session's force.
    pub piggybacked: u64,
}

#[derive(Default)]
struct GroupState {
    /// A leader is inside the force path right now.
    forcing: bool,
}

struct WalShared {
    log: Mutex<Wal>,
    /// Published stable LSN — read lock-free on the commit fast path.
    stable_hint: AtomicU64,
    group: std::sync::Mutex<GroupState>,
    cond: std::sync::Condvar,
    forces: AtomicU64,
    piggybacked: AtomicU64,
    /// Modelled device latency of one log force, in real µs (0 = instant).
    /// Only the group-commit leader pays it; piggybacked commits share it.
    force_latency_us: AtomicU64,
    /// Commits awaiting the next force — swapped to 0 by the leader so
    /// each `group_commit_force` trace event carries its batch size.
    commit_batch: AtomicU64,
    trace: std::sync::OnceLock<TraceSink>,
}

impl WalShared {
    #[inline]
    fn trace(&self) -> Option<&TraceSink> {
        self.trace.get().filter(|s| s.is_enabled())
    }
}

/// Cloneable handle to the common log (TC and DC both append).
#[derive(Clone)]
pub struct SharedWal {
    inner: Arc<WalShared>,
}

/// Group-commit leadership token. Clears `forcing` and wakes waiters on
/// drop — including an unwind — so a panicking leader (e.g. a failed
/// assertion inside the force path) releases leadership instead of leaving
/// every later `force_covering` caller spinning with no electable leader.
struct LeaderGuard<'a> {
    shared: &'a WalShared,
}

impl Drop for LeaderGuard<'_> {
    fn drop(&mut self) {
        let mut g = self.shared.group.lock().unwrap_or_else(|e| e.into_inner());
        g.forcing = false;
        drop(g);
        self.shared.cond.notify_all();
    }
}

/// Direct-access guard. Derefs to [`Wal`]; on drop, republishes the stable
/// hint and wakes force waiters (the guarded section may have changed
/// stability arbitrarily — truncation, tearing, `make_all_stable`, ...).
pub struct WalGuard<'a> {
    guard: MutexGuard<'a, Wal>,
    shared: &'a WalShared,
}

impl std::ops::Deref for WalGuard<'_> {
    type Target = Wal;
    fn deref(&self) -> &Wal {
        &self.guard
    }
}

impl std::ops::DerefMut for WalGuard<'_> {
    fn deref_mut(&mut self) -> &mut Wal {
        &mut self.guard
    }
}

impl Drop for WalGuard<'_> {
    fn drop(&mut self) {
        // Keep the hint honest but never *raise* it here: publication of
        // new stability is the force path's job (the modelled device
        // latency must elapse first). Lowering matters after sections that
        // regressed stability — tears, crash truncation, reloads. The
        // lowering is a single atomic `fetch_min`, not a load-then-store:
        // racing publishers (another guard's drop, a leader's post-force
        // publication) interleaving between a separate load and store
        // could leave the hint above the true stable LSN, and an
        // over-published hint lets `force_covering` skip a force the
        // caller actually needed. `fetch_min` can only ever lower the
        // hint, which is the safe direction (a too-low hint merely costs
        // a redundant no-op force).
        let s = self.guard.stable_lsn().0;
        self.shared.stable_hint.fetch_min(s, Ordering::AcqRel);
        self.shared.cond.notify_all();
    }
}

impl SharedWal {
    pub fn new(wal: Wal) -> SharedWal {
        let stable = wal.stable_lsn().0;
        SharedWal {
            inner: Arc::new(WalShared {
                log: Mutex::new(wal),
                stable_hint: AtomicU64::new(stable),
                group: std::sync::Mutex::new(GroupState::default()),
                cond: std::sync::Condvar::new(),
                forces: AtomicU64::new(0),
                piggybacked: AtomicU64::new(0),
                force_latency_us: AtomicU64::new(0),
                commit_batch: AtomicU64::new(0),
                trace: std::sync::OnceLock::new(),
            }),
        }
    }

    /// Attach the trace journal (set once, at engine build). Group-commit
    /// forces and piggybacked commits are journaled through it.
    pub fn set_trace(&self, sink: TraceSink) {
        let _ = self.inner.trace.set(sink);
    }

    /// Model a per-force device latency (real time). The throughput bench
    /// uses this to expose group-commit amortization; correctness tests
    /// leave it at 0.
    pub fn set_force_latency_us(&self, us: u64) {
        self.inner.force_latency_us.store(us, Ordering::Relaxed);
    }

    /// Lock the log for direct access (scans, recovery repair, tests).
    pub fn lock(&self) -> WalGuard<'_> {
        WalGuard { guard: self.inner.log.lock(), shared: &self.inner }
    }

    /// Buffered append: encode outside the latch, take it only for the LSN
    /// assignment + memcpy. Returns the record's LSN.
    pub fn append(&self, payload: &LogPayload) -> Lsn {
        let body = payload.encode();
        self.inner.log.lock().append_encoded(&body)
    }

    /// The last published stable LSN (may lag the true value by one
    /// in-flight force; never ahead of it outside a crashed/teared window).
    pub fn stable_hint(&self) -> Lsn {
        Lsn(self.inner.stable_hint.load(Ordering::Acquire))
    }

    /// Group commit: ensure the record **starting** at `lsn` is stable
    /// (i.e. `stable_lsn > lsn`), forcing the log at most once per batch of
    /// concurrent committers. Returns the stable LSN that covers it.
    pub fn force_covering(&self, lsn: Lsn) -> Lsn {
        let s = self.stable_hint();
        if s > lsn {
            self.inner.piggybacked.fetch_add(1, Ordering::Relaxed);
            if let Some(t) = self.inner.trace() {
                t.emit(EventKind::GroupCommitPiggyback { lsn: lsn.0 });
            }
            return s;
        }
        // This commit needs the upcoming force; count it into that
        // force's batch.
        self.inner.commit_batch.fetch_add(1, Ordering::Relaxed);
        let mut g = self.inner.group.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            let s = self.stable_hint();
            if s > lsn {
                self.inner.piggybacked.fetch_add(1, Ordering::Relaxed);
                if let Some(t) = self.inner.trace() {
                    t.emit(EventKind::GroupCommitPiggyback { lsn: lsn.0 });
                }
                return s;
            }
            if !g.forcing {
                g.forcing = true;
                drop(g);
                let _lead = LeaderGuard { shared: &self.inner };
                let stable = {
                    let mut log = self.inner.log.lock();
                    log.make_all_stable();
                    log.stable_lsn()
                };
                debug_assert!(stable > lsn, "leader force covers its own record");
                // Device time of the force, paid outside every latch so
                // appenders keep filling the next batch while "the disk"
                // works — this is what group commit amortizes.
                let lat = self.inner.force_latency_us.load(Ordering::Relaxed);
                if lat > 0 {
                    std::thread::sleep(std::time::Duration::from_micros(lat));
                }
                // Publish the *current* truth, not the pre-sleep value: a
                // crash/tear during the sleep may have regressed stability,
                // and republishing the stale-high LSN would let later
                // commits piggyback on a force that no longer covers them.
                let published = {
                    let log = self.inner.log.lock();
                    let s = log.stable_lsn();
                    self.inner.stable_hint.store(s.0, Ordering::Release);
                    s
                };
                self.inner.forces.fetch_add(1, Ordering::Relaxed);
                if let Some(t) = self.inner.trace() {
                    let batch = self.inner.commit_batch.swap(0, Ordering::Relaxed);
                    t.emit(EventKind::GroupCommitForce { batch, lsn: published.0 });
                } else {
                    self.inner.commit_batch.store(0, Ordering::Relaxed);
                }
                // `_lead` drops here: forcing is cleared and waiters woken.
                return published;
            }
            // A leader is in flight; it will stabilize everything appended
            // so far (including our record) and wake us.
            let (g2, _timeout) = self
                .inner
                .cond
                .wait_timeout(g, std::time::Duration::from_millis(1))
                .unwrap_or_else(|e| e.into_inner());
            g = g2;
        }
    }

    /// Force everything currently appended (checkpoint brackets, crash
    /// capture). Returns the new stable LSN.
    pub fn force_all(&self) -> Lsn {
        let mut log = self.inner.log.lock();
        log.make_all_stable();
        let stable = log.stable_lsn();
        self.inner.stable_hint.store(stable.0, Ordering::Release);
        drop(log);
        self.inner.forces.fetch_add(1, Ordering::Relaxed);
        if let Some(t) = self.inner.trace() {
            let batch = self.inner.commit_batch.swap(0, Ordering::Relaxed);
            t.emit(EventKind::GroupCommitForce { batch, lsn: stable.0 });
        } else {
            self.inner.commit_batch.store(0, Ordering::Relaxed);
        }
        self.inner.cond.notify_all();
        stable
    }

    /// Group-commit counters since construction.
    pub fn group_commit_stats(&self) -> GroupCommitStats {
        GroupCommitStats {
            forces: self.inner.forces.load(Ordering::Relaxed),
            piggybacked: self.inner.piggybacked.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lr_common::TxnId;

    fn begin(t: u64) -> LogPayload {
        LogPayload::TxnBegin { txn: TxnId(t) }
    }

    #[test]
    fn append_and_force_covering() {
        let wal = Wal::new_shared(4096);
        let a = wal.append(&begin(1));
        assert!(wal.stable_hint() <= a);
        let s = wal.force_covering(a);
        assert!(s > a, "record covered");
        assert_eq!(wal.lock().stable_lsn(), s);
        // Second force over the same record piggybacks on the hint.
        let before = wal.group_commit_stats();
        wal.force_covering(a);
        let after = wal.group_commit_stats();
        assert_eq!(after.forces, before.forces);
        assert_eq!(after.piggybacked, before.piggybacked + 1);
    }

    #[test]
    fn guard_drop_republishes_hint() {
        let wal = Wal::new_shared(4096);
        let a = wal.append(&begin(1));
        {
            let mut g = wal.lock();
            g.make_all_stable();
        }
        // Drops never raise the hint (that is the force path's job), so a
        // force after direct stabilization is a cheap no-op force.
        assert!(wal.stable_hint() <= a);
        assert!(wal.force_covering(a) > a);
        // Tearing regresses stability; the hint must track the true value.
        wal.append(&begin(2));
        let pre_tear = {
            let mut g = wal.lock();
            g.make_all_stable();
            let s = g.stable_lsn();
            g.tear(12);
            s
        };
        let true_stable = wal.lock().stable_lsn();
        assert!(true_stable < pre_tear, "tear regressed stability");
        // The hint is a conservative lower bound of true stability — the
        // safe direction for force_covering (it may force redundantly,
        // never skip a needed force).
        assert!(wal.stable_hint() <= true_stable, "hint never exceeds true stability");
    }

    #[test]
    fn racing_guard_drops_publish_hint_atomically() {
        // Regression: WalGuard's drop used a separate load + store to
        // republish the stable hint; publishers interleaving between the
        // two could strand the hint *above* the true stable LSN, letting a
        // later force_covering piggyback on a force that no longer covered
        // its record. The republish is now a single fetch_min, which can
        // only lower the hint. The invariant — `hint <= stable` whenever
        // the log latch is held (publication is quiescent under it) — must
        // survive arbitrary stabilize/tear interleavings across threads.
        let wal = Wal::new_shared(4096);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let wal = wal.clone();
                s.spawn(move || {
                    for i in 0..300u64 {
                        wal.append(&begin(t * 1_000 + i));
                        {
                            let mut g = wal.lock();
                            g.make_all_stable();
                            if i % 2 == 0 {
                                g.tear(6); // regress stability under the guard
                            }
                        }
                        let g = wal.lock();
                        let (hint, stable) = (wal.stable_hint(), g.stable_lsn());
                        assert!(hint <= stable, "hint {hint:?} above true stable {stable:?}");
                    }
                });
            }
        });
    }

    #[test]
    fn concurrent_commits_share_forces() {
        let wal = Wal::new_shared(4096);
        let threads = 8;
        let per = 50;
        std::thread::scope(|s| {
            for t in 0..threads {
                let wal = wal.clone();
                s.spawn(move || {
                    for i in 0..per {
                        let lsn = wal.append(&begin(t * 1000 + i));
                        let stable = wal.force_covering(lsn);
                        assert!(stable > lsn);
                    }
                });
            }
        });
        let stats = wal.group_commit_stats();
        let total = threads * per;
        assert_eq!(wal.lock().record_count() as u64, total, "all appends present");
        assert!(
            stats.forces + stats.piggybacked >= total,
            "every commit observed covered stability: {stats:?}"
        );
        // The whole point: under contention, forces < commits.
        assert!(stats.forces <= total, "{stats:?}");
    }
}
