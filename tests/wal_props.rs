//! Property tests of the common log: arbitrary payloads round-trip through
//! the binary framing, crash truncation never leaves a torn record, and
//! scans agree with random access.

use lr_common::{Lsn, PageId, TableId, TxnId};
use lr_wal::{ClrAction, DeltaRecord, LogPayload, SmoRecord, Wal};
use proptest::prelude::*;

fn arb_pids() -> impl Strategy<Value = Vec<PageId>> {
    prop::collection::vec((0u64..10_000).prop_map(PageId), 0..20)
}

fn arb_lsn() -> impl Strategy<Value = Lsn> {
    (0u64..1 << 40).prop_map(Lsn)
}

fn arb_bytes() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(any::<u8>(), 0..200)
}

fn arb_payload() -> impl Strategy<Value = LogPayload> {
    let txn = (1u64..1000).prop_map(TxnId);
    let table = (1u32..10).prop_map(TableId);
    prop_oneof![
        txn.clone().prop_map(|txn| LogPayload::TxnBegin { txn }),
        txn.clone().prop_map(|txn| LogPayload::TxnCommit { txn }),
        txn.clone().prop_map(|txn| LogPayload::TxnAbort { txn }),
        (txn.clone(), table, any::<u64>(), any::<u64>(), arb_lsn(), arb_bytes(), arb_bytes())
            .prop_map(|(txn, table, key, pid, prev_lsn, before, after)| {
                LogPayload::Update { txn, table, key, pid: PageId(pid), prev_lsn, before, after }
            }),
        (txn.clone(), arb_bytes(), arb_lsn()).prop_map(|(txn, v, undo_next)| LogPayload::Clr {
            txn,
            table: TableId(1),
            key: 5,
            pid: PageId(9),
            undo_next,
            action: ClrAction::RestoreValue(v),
        }),
        (arb_pids(), arb_pids(), arb_lsn(), 0u32..32, arb_lsn()).prop_map(
            |(dirty_set, written_set, fw_lsn, first_dirty, tc_lsn)| {
                LogPayload::Delta(DeltaRecord {
                    dirty_set,
                    dirty_lsns: vec![],
                    written_set,
                    fw_lsn,
                    first_dirty,
                    tc_lsn,
                })
            }
        ),
        (arb_pids(), arb_lsn())
            .prop_map(|(written_set, fw_lsn)| LogPayload::Bw { written_set, fw_lsn }),
        Just(LogPayload::BeginCheckpoint),
        (arb_lsn(), prop::collection::vec(((1u64..50).prop_map(TxnId), arb_lsn()), 0..5)).prop_map(
            |(bckpt_lsn, active_txns)| LogPayload::EndCheckpoint { bckpt_lsn, active_txns }
        ),
        prop::collection::vec(((0u64..1000).prop_map(PageId), arb_lsn()), 0..10)
            .prop_map(|dpt| LogPayload::AriesCheckpoint { dpt }),
        arb_lsn().prop_map(|rssp_lsn| LogPayload::Rssp { rssp_lsn }),
        (arb_pids(), arb_bytes()).prop_map(|(pids, img)| {
            LogPayload::Smo(SmoRecord {
                pages: pids.into_iter().map(|p| (p, img.clone())).collect(),
                new_root: None,
            })
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn payload_roundtrip(p in arb_payload()) {
        let bytes = p.encode();
        let back = LogPayload::decode(&bytes).unwrap();
        prop_assert_eq!(back, p);
    }

    #[test]
    fn log_scan_agrees_with_random_access(payloads in prop::collection::vec(arb_payload(), 1..40)) {
        let mut wal = Wal::new(1024);
        let lsns: Vec<Lsn> = payloads.iter().map(|p| wal.append(p)).collect();
        let scan = wal.scan_from(Lsn::NULL).unwrap();
        prop_assert_eq!(scan.len(), payloads.len());
        for ((lsn, expect), got) in lsns.iter().zip(payloads.iter()).zip(scan.iter()) {
            prop_assert_eq!(&got.lsn, lsn);
            prop_assert_eq!(&got.payload, expect);
            let direct = wal.read_at(*lsn).unwrap();
            prop_assert_eq!(&direct.payload, expect);
        }
    }

    #[test]
    fn truncation_is_exact(
        payloads in prop::collection::vec(arb_payload(), 2..30),
        stable_upto in 0usize..30,
    ) {
        let mut wal = Wal::new(1024);
        let lsns: Vec<Lsn> = payloads.iter().map(|p| wal.append(p)).collect();
        let keep = stable_upto.min(payloads.len());
        // Stabilize exactly `keep` records.
        let stable_lsn = if keep == payloads.len() {
            wal.end_lsn()
        } else {
            lsns[keep]
        };
        wal.make_stable(stable_lsn);
        let lost = wal.truncate_to_stable();
        prop_assert_eq!(lost, payloads.len() - keep);
        let survivors = wal.scan_from(Lsn::NULL).unwrap();
        prop_assert_eq!(survivors.len(), keep);
        for (got, expect) in survivors.iter().zip(payloads.iter()) {
            prop_assert_eq!(&got.payload, expect);
        }
        // Appending after truncation keeps LSNs dense and readable.
        let new_lsn = wal.append(&LogPayload::BeginCheckpoint);
        prop_assert_eq!(wal.read_at(new_lsn).unwrap().payload, LogPayload::BeginCheckpoint);
    }

    #[test]
    fn log_page_accounting_is_monotone(payloads in prop::collection::vec(arb_payload(), 1..30)) {
        let mut wal = Wal::new(512);
        for p in &payloads {
            wal.append(p);
        }
        let total = wal.log_pages_between(Lsn::NULL, wal.end_lsn());
        prop_assert!(total >= 1);
        prop_assert!(total <= wal.byte_len() / 512 + 1);
        // Sub-ranges never exceed the whole.
        let mid = Lsn(wal.byte_len() / 2);
        let a = wal.log_pages_between(Lsn::NULL, mid);
        let b = wal.log_pages_between(mid, wal.end_lsn());
        prop_assert!(a <= total && b <= total);
        prop_assert!(a + b >= total, "halves cover the whole (may share a page)");
    }
}
