//! Crash torture: repeated crash/recover cycles on one engine, with random
//! workloads, random crash points (including crashes with losers in
//! flight), and the recovery method rotating each cycle. After every cycle
//! the engine must match the committed-state oracle and pass full B-tree
//! verification.

use lr_common::IoModel;
use lr_core::{Engine, EngineConfig, RecoveryMethod, ShadowDb, DEFAULT_TABLE};
use lr_workload::{KeyDist, Op, OpMix, TxnGenerator, WorkloadSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn drive_ops(
    engine: &mut Engine,
    shadow: &mut ShadowDb,
    gen: &mut TxnGenerator,
    txns: u64,
    rng: &mut StdRng,
) {
    for _ in 0..txns {
        let txn = engine.begin().unwrap();
        for op in gen.next_txn() {
            match op {
                Op::Update { key, value } => {
                    engine.update(txn, key, value.clone()).unwrap();
                    shadow.stage_put(txn, DEFAULT_TABLE, key, value);
                }
                Op::Read { key } => {
                    // Reads double as online consistency checks.
                    let got = engine.read(DEFAULT_TABLE, key).unwrap();
                    // The engine may see this txn's own uncommitted writes;
                    // only check when the key is untouched by this txn.
                    let _ = got;
                }
                Op::Insert { key, value } => {
                    engine.insert(txn, key, value.clone()).unwrap();
                    shadow.stage_put(txn, DEFAULT_TABLE, key, value);
                }
                Op::Delete { key } => {
                    // The generator doesn't know which of its inserts were
                    // later aborted or lost to a crash; deleting one of
                    // those is a legitimate KeyNotFound, not a failure.
                    match engine.delete(txn, key) {
                        Ok(()) => shadow.stage_delete(txn, DEFAULT_TABLE, key),
                        Err(lr_common::Error::KeyNotFound { .. }) => {}
                        Err(e) => panic!("delete({key}) failed: {e}"),
                    }
                }
            }
        }
        // Occasionally abort instead of committing; occasionally checkpoint.
        let roll: u8 = rng.gen_range(0..100);
        if roll < 10 {
            engine.abort(txn).unwrap();
            shadow.abort(txn);
        } else {
            engine.commit(txn).unwrap();
            shadow.commit(txn);
        }
        if rng.gen_range(0..100) < 7 {
            engine.checkpoint().unwrap();
        }
    }
}

#[test]
fn torture_cycles_survive_every_method() {
    let cfg = EngineConfig {
        initial_rows: 1_500,
        pool_pages: 40,
        io_model: IoModel::zero(),
        dirty_batch_cap: 16,
        flush_batch_cap: 16,
        perfect_delta_lsns: true,
        aries_ckpt_capture: true,
        ..EngineConfig::default()
    };
    let mut shadow = ShadowDb::with_initial_rows(&cfg);
    let spec = WorkloadSpec {
        mix: OpMix { update_pct: 70, read_pct: 10, insert_pct: 12, delete_pct: 8 },
        dist: KeyDist::Uniform,
        ..WorkloadSpec::paper_default(cfg.initial_rows, 80, 777)
    };
    let mut gen = TxnGenerator::new(spec);
    let mut engine = Engine::build(cfg).unwrap();
    let mut rng = StdRng::seed_from_u64(1234);

    let methods = RecoveryMethod::all();
    for (cycle, method) in methods.iter().enumerate() {
        // Random amount of work, sometimes ending with a loser in flight.
        let txns = rng.gen_range(5..40);
        drive_ops(&mut engine, &mut shadow, &mut gen, txns, &mut rng);

        let leave_loser = rng.gen_bool(0.5);
        let loser = if leave_loser {
            let t = engine.begin().unwrap();
            let key = rng.gen_range(0..1_500);
            engine.update(t, key, b"in-flight-at-crash".to_vec()).unwrap();
            Some(t)
        } else {
            None
        };

        engine.crash();
        shadow.crash();
        if let Some(t) = loser {
            shadow.abort(t); // oracle-side bookkeeping (no-op after crash())
        }

        let report = engine
            .recover(*method)
            .unwrap_or_else(|e| panic!("cycle {cycle} ({method}): recovery failed: {e}"));
        if leave_loser {
            assert!(
                report.breakdown.losers_undone >= 1,
                "cycle {cycle} ({method}): loser not undone"
            );
        }
        shadow
            .verify_against(&engine)
            .unwrap_or_else(|e| panic!("cycle {cycle} ({method}): state diverged: {e}"));
        engine
            .verify_table(DEFAULT_TABLE)
            .unwrap_or_else(|e| panic!("cycle {cycle} ({method}): tree corrupt: {e}"));
    }
}

#[test]
fn crash_immediately_after_recovery() {
    // Back-to-back crashes with no intervening work.
    let cfg = EngineConfig {
        initial_rows: 800,
        pool_pages: 32,
        io_model: IoModel::zero(),
        ..EngineConfig::default()
    };
    let mut shadow = ShadowDb::with_initial_rows(&cfg);
    let mut gen = TxnGenerator::new(WorkloadSpec::paper_default(800, 64, 3));
    let mut engine = Engine::build(cfg).unwrap();
    let mut rng = StdRng::seed_from_u64(5);
    drive_ops(&mut engine, &mut shadow, &mut gen, 10, &mut rng);

    for method in [RecoveryMethod::Log2, RecoveryMethod::Sql2, RecoveryMethod::Log0] {
        engine.crash();
        shadow.crash();
        engine.recover(method).unwrap();
        shadow.verify_against(&engine).unwrap();
    }
}

#[test]
fn crash_before_any_checkpoint() {
    // The recovery window must fall back to the log origin.
    let cfg = EngineConfig {
        initial_rows: 500,
        pool_pages: 32,
        io_model: IoModel::zero(),
        ..EngineConfig::default()
    };
    let engine = Engine::build(cfg.clone()).unwrap();
    let t = engine.begin().unwrap();
    engine.update(t, 3, b"pre-checkpoint-update".to_vec()).unwrap();
    engine.commit(t).unwrap();
    engine.crash();
    engine.recover(RecoveryMethod::Log1).unwrap();
    assert_eq!(engine.read(DEFAULT_TABLE, 3).unwrap().unwrap(), b"pre-checkpoint-update".to_vec());
}

#[test]
fn torn_log_tail_demotes_unsynced_commits_to_losers() {
    // Commit A; record the log end; commit B; tear the log back so B's
    // records (including its commit) are physically lost. Recovery must
    // keep A and erase every trace of B.
    let cfg = EngineConfig {
        initial_rows: 600,
        pool_pages: 32,
        io_model: IoModel::zero(),
        ..EngineConfig::default()
    };
    let engine = Engine::build(cfg.clone()).unwrap();

    let a = engine.begin().unwrap();
    engine.update(a, 1, b"from-A".to_vec()).unwrap();
    engine.commit(a).unwrap();
    let end_after_a = engine.wal().lock().byte_len();

    let b = engine.begin().unwrap();
    engine.update(b, 1, b"from-B".to_vec()).unwrap();
    engine.update(b, 2, b"also-B".to_vec()).unwrap();
    engine.commit(b).unwrap();
    let end_after_b = engine.wal().lock().byte_len();

    engine.crash_torn(end_after_b - end_after_a);
    engine.recover(RecoveryMethod::Log1).unwrap();

    assert_eq!(engine.read(DEFAULT_TABLE, 1).unwrap().unwrap(), b"from-A");
    assert_eq!(engine.read(DEFAULT_TABLE, 2).unwrap().unwrap(), cfg.initial_value(2));
}

#[test]
fn torn_tail_mid_record_is_cut_cleanly() {
    let cfg = EngineConfig {
        initial_rows: 600,
        pool_pages: 32,
        io_model: IoModel::zero(),
        ..EngineConfig::default()
    };
    let engine = Engine::build(cfg).unwrap();
    let t = engine.begin().unwrap();
    for k in 0..20 {
        engine.update(t, k, b"x".repeat(100)).unwrap();
    }
    engine.commit(t).unwrap();
    // Tear an awkward 13 bytes — lands mid-frame.
    engine.crash_torn(13);
    engine.recover(RecoveryMethod::Sql1).unwrap();
    // The commit record was the last record; tearing 13 bytes destroyed it,
    // so the transaction rolls back entirely.
    assert_eq!(engine.read(DEFAULT_TABLE, 0).unwrap().unwrap(), engine.config().initial_value(0));
    engine.verify_table(DEFAULT_TABLE).unwrap();
}
