//! Optimistic-write correctness under churn.
//!
//! The OLC prepare path stages writes after a latch-free descent, taking
//! a write latch (with seqlock version validation) on the final leaf
//! only. The suite drives it against everything that can invalidate the
//! validation at once — concurrent updaters on neighbouring keys, B-tree
//! splits and merges from insert/delete churn, and cache-miss evictions
//! in a deliberately small pool with epoch-based frame reclamation
//! recycling frames the whole time — and asserts bank-transfer money
//! conservation, exact per-key balances (no lost updates), and that
//! recycled frames are never validated by a stale reader (every observed
//! value decodes cleanly against the writer protocol).

use lr_core::{Engine, EngineConfig, DEFAULT_TABLE};
use lr_workload::{run_concurrent, ConcurrentScenario};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Fixed-width value encoding `[key: 8][balance: 8][padding]` — updates
/// never change the length, so they stay eligible for the OLC prepare,
/// and any observer can verify a value against the writer protocol.
fn encoded(key: u64, balance: u64) -> Vec<u8> {
    let mut v = Vec::with_capacity(32);
    v.extend_from_slice(&key.to_le_bytes());
    v.extend_from_slice(&balance.to_le_bytes());
    v.resize(32, 0xA5);
    v
}

fn decode(key: u64, value: &[u8]) -> u64 {
    assert_eq!(value.len(), 32, "torn value length for key {key}");
    assert_eq!(
        u64::from_le_bytes(value[..8].try_into().unwrap()),
        key,
        "value for key {key} carries another key's bytes — torn or recycled read"
    );
    assert!(value[16..].iter().all(|b| *b == 0xA5), "torn padding for key {key}");
    u64::from_le_bytes(value[8..16].try_into().unwrap())
}

/// Bank workload: each updater owns a disjoint key stripe and moves money
/// between its own keys (read-for-update both, write both), while an
/// insert/delete churn thread forces splits and merges and a tiny pool
/// keeps the clock evictor retiring and recycling frames. On completion
/// every balance must match the updater's local ledger exactly (a lost
/// update — an OLC prepare validating against a stale leaf — would break
/// it) and total money is conserved.
#[test]
fn optimistic_writes_under_churn_lose_no_updates() {
    const STRIPES: u64 = 4;
    const KEYS: u64 = 512;
    const TRANSFERS: u64 = 400;
    const INIT: u64 = 1_000;

    let engine = Engine::build(EngineConfig {
        initial_rows: 0,
        // Small pages + small pool: a few hundred leaves over 64 frames,
        // so evictions retire frames onto the limbo list and recycling
        // races the optimistic descents continuously.
        page_size: 256,
        pool_pages: 64,
        merge_min_fill: 0.3,
        io_model: lr_common::IoModel::zero(),
        ..EngineConfig::default()
    })
    .unwrap()
    .into_shared();

    {
        let mut s = Engine::session(&engine);
        for key in 0..KEYS {
            s.run_txn(10, |s| s.insert_in(DEFAULT_TABLE, key, encoded(key, INIT))).unwrap();
        }
    }

    let stop = Arc::new(AtomicBool::new(false));
    let ledgers: Vec<Vec<u64>> = std::thread::scope(|scope| {
        let mut updaters = Vec::new();
        for stripe in 0..STRIPES {
            let engine = engine.clone();
            updaters.push(scope.spawn(move || {
                let mut s = Engine::session(&engine);
                let keys: Vec<u64> = (stripe..KEYS).step_by(STRIPES as usize).collect();
                let mut ledger = vec![INIT; keys.len()];
                let mut x = 0x9E37_79B9u64.wrapping_add(stripe);
                for _ in 0..TRANSFERS {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let i = (x as usize) % keys.len();
                    let j = (x >> 32) as usize % keys.len();
                    if i == j {
                        continue;
                    }
                    let (a, b) = (keys[i], keys[j]);
                    // Balances are re-read inside the transaction body so
                    // a retry never double-applies; the committed amount
                    // is captured for the local ledger.
                    let mut moved = 0u64;
                    s.run_txn(100, |s| {
                        let va = s.read_for_update(DEFAULT_TABLE, a)?.expect("key a exists");
                        let vb = s.read_for_update(DEFAULT_TABLE, b)?.expect("key b exists");
                        let (ba, bb) = (decode(a, &va), decode(b, &vb));
                        let amt = ba.min(1 + x % 10);
                        s.update_in(DEFAULT_TABLE, a, encoded(a, ba - amt))?;
                        s.update_in(DEFAULT_TABLE, b, encoded(b, bb + amt))?;
                        moved = amt;
                        Ok(())
                    })
                    .unwrap();
                    ledger[i] -= moved;
                    ledger[j] += moved;
                }
                ledger
            }));
        }
        // Churn: fresh high keys force splits while prepares descend;
        // deletes (merging enabled) shrink leaves back with merge SMOs.
        {
            let engine = engine.clone();
            let stop = stop.clone();
            scope.spawn(move || {
                let mut s = Engine::session(&engine);
                let mut next = 1_000_000u64;
                while !stop.load(Ordering::Relaxed) {
                    for _ in 0..64 {
                        let k = next;
                        next += 1;
                        s.run_txn(100, |s| s.insert_in(DEFAULT_TABLE, k, encoded(k, 0))).unwrap();
                    }
                    for k in (next - 64)..next {
                        s.run_txn(100, |s| s.delete_in(DEFAULT_TABLE, k)).unwrap();
                    }
                }
            });
        }
        // A stale-reader canary: latch-free reads racing the recycler must
        // only ever validate well-formed values (decode asserts both).
        {
            let engine = engine.clone();
            let stop = stop.clone();
            scope.spawn(move || {
                let mut x = 0xDEAD_BEEFu64;
                while !stop.load(Ordering::Relaxed) {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let key = x % KEYS;
                    if let Some(v) = engine.read(DEFAULT_TABLE, key).unwrap() {
                        decode(key, &v);
                    }
                }
            });
        }
        let ledgers: Vec<Vec<u64>> =
            updaters.into_iter().map(|h| h.join().expect("updater panicked")).collect();
        stop.store(true, Ordering::Relaxed);
        ledgers
    });

    engine.tc().locks().assert_no_leaks();

    // No lost updates: every balance equals its owner's ledger exactly,
    // and money is conserved across the whole bank.
    let mut total = 0u64;
    for (stripe, ledger) in ledgers.iter().enumerate() {
        let keys: Vec<u64> = (stripe as u64..KEYS).step_by(STRIPES as usize).collect();
        for (i, key) in keys.iter().enumerate() {
            let v = engine.read(DEFAULT_TABLE, *key).unwrap().expect("key survives churn");
            let balance = decode(*key, &v);
            assert_eq!(
                balance, ledger[i],
                "key {key}: engine holds {balance}, ledger says {} — lost update",
                ledger[i]
            );
            total += balance;
        }
    }
    assert_eq!(total, KEYS * INIT, "money not conserved");

    // The machinery must have carried real traffic in this deliberately
    // cache-thrashing setup: prepares validated optimistically, SMO-bound
    // operations fell back, and the evict → retire → recycle pipeline
    // actually cycled frames (not just parked them forever).
    let stats = engine.stats();
    assert!(stats.optimistic_writes > 0, "no write was ever prepared latch-free");
    assert!(stats.write_fallbacks > 0, "splits/merges never forced a latched prepare");
    assert!(stats.frames_retired > 0, "evictions never retired a frame — pool too big?");
    assert!(stats.epochs_advanced > 0, "reclamation epoch never advanced");
    assert!(stats.frames_recycled > 0, "no retired frame was ever recycled");
}

/// A/B switch: with `optimistic_writes` off the engine must never touch
/// the optimistic prepare machinery (the latched path is the baseline the
/// `writepath` gate compares against).
#[test]
fn disabled_optimistic_writes_never_engage() {
    let engine = Engine::build(EngineConfig {
        initial_rows: 500,
        pool_pages: 256,
        optimistic_writes: false,
        io_model: lr_common::IoModel::zero(),
        ..EngineConfig::default()
    })
    .unwrap()
    .into_shared();
    let mut s = Engine::session(&engine);
    for key in [0u64, 100, 499] {
        s.run_txn(10, |s| s.update_in(DEFAULT_TABLE, key, vec![7u8; 100])).unwrap();
    }
    s.run_txn(10, |s| s.insert_in(DEFAULT_TABLE, 10_000, vec![1u8; 16])).unwrap();
    s.run_txn(10, |s| s.delete_in(DEFAULT_TABLE, 10_000)).unwrap();
    let stats = engine.stats();
    assert_eq!(stats.optimistic_writes, 0);
    assert_eq!(stats.write_fallbacks, 0, "nothing to fall back from");
    assert_eq!(stats.write_restarts, 0);
    assert_eq!(stats.leaf_upgrades_failed, 0);
}

/// Recovery equivalence guard for the write path: an OLC-prepared
/// operation logs and applies exactly what its latched twin would, so
/// after crash + recovery — under **every** method of the spectrum — the
/// surviving state must be identical between an optimistic-writes engine
/// and a latched one over the same single-stream history.
#[test]
fn optimistic_writes_agree_with_latched_after_recovery() {
    for method in lr_core::RecoveryMethod::all() {
        let run = |optimistic: bool| {
            let engine = Engine::build(EngineConfig {
                initial_rows: 1_000,
                pool_pages: 128,
                optimistic_writes: optimistic,
                io_model: lr_common::IoModel::zero(),
                // Capture everything any method of the spectrum could
                // need on one log (the paper's common-log trick).
                aries_ckpt_capture: true,
                perfect_delta_lsns: true,
                ..EngineConfig::default()
            })
            .unwrap()
            .into_shared();
            // One stream: concurrent streams would make the final value
            // of a contended key depend on commit interleaving, which
            // would compare scheduling, not the prepare path.
            let scenario = ConcurrentScenario::paper_default(1, 150, 1_000);
            run_concurrent(&engine, &scenario).unwrap();
            // A checkpoint mid-history (the ARIES variant reads its DPT
            // from it) plus an unflushed tail so redo has real work.
            engine.checkpoint().unwrap();
            {
                let mut s = Engine::session(&engine);
                for key in 0..50u64 {
                    s.run_txn(10, |s| s.update_in(DEFAULT_TABLE, key, vec![0xC3; 100])).unwrap();
                }
            }
            engine.crash();
            engine.recover(method).unwrap();
            engine.scan_table(DEFAULT_TABLE).unwrap()
        };
        assert_eq!(run(true), run(false), "write path leaked into {method:?} recovered state");
    }
}
