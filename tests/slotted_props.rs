//! Property tests of the slotted page against a `Vec<Vec<u8>>` model:
//! arbitrary insert/update/remove sequences with compaction, under tight
//! space, never lose or corrupt a surviving record.

use lr_common::{Lsn, PageId};
use lr_storage::{Page, PageType};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum PageOp {
    Insert { at: usize, len: usize, byte: u8 },
    Update { at: usize, len: usize, byte: u8 },
    Remove { at: usize },
}

fn page_ops() -> impl Strategy<Value = Vec<PageOp>> {
    prop::collection::vec(
        prop_oneof![
            (any::<usize>(), 1usize..60, any::<u8>()).prop_map(|(at, len, byte)| PageOp::Insert {
                at,
                len,
                byte
            }),
            (any::<usize>(), 1usize..60, any::<u8>()).prop_map(|(at, len, byte)| PageOp::Update {
                at,
                len,
                byte
            }),
            any::<usize>().prop_map(|at| PageOp::Remove { at }),
        ],
        1..200,
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn slotted_page_matches_vec_model(ops in page_ops()) {
        let mut page = Page::new(512, PageId(3), PageType::Leaf);
        let mut model: Vec<Vec<u8>> = Vec::new();

        for op in &ops {
            match op {
                PageOp::Insert { at, len, byte } => {
                    let slot = at % (model.len() + 1);
                    let rec = vec![*byte; *len];
                    match page.insert_record(slot, &rec) {
                        Ok(()) => model.insert(slot, rec),
                        Err(lr_common::Error::PageFull { .. }) => {
                            // Model must agree the record cannot fit.
                            prop_assert!(
                                page.free_space() < rec.len() + lr_storage::SLOT_SIZE,
                                "spurious PageFull: free={} need={}",
                                page.free_space(),
                                rec.len() + lr_storage::SLOT_SIZE
                            );
                        }
                        Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
                    }
                }
                PageOp::Update { at, len, byte } => {
                    if model.is_empty() {
                        continue;
                    }
                    let slot = at % model.len();
                    let rec = vec![*byte; *len];
                    match page.update_record(slot, &rec) {
                        Ok(()) => model[slot] = rec,
                        Err(lr_common::Error::PageFull { .. }) => {
                            let reclaimable = page.free_space() + model[slot].len();
                            prop_assert!(
                                reclaimable < rec.len(),
                                "spurious PageFull on update: reclaimable={} need={}",
                                reclaimable,
                                rec.len()
                            );
                        }
                        Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
                    }
                }
                PageOp::Remove { at } => {
                    if model.is_empty() {
                        continue;
                    }
                    let slot = at % model.len();
                    page.remove_record(slot);
                    model.remove(slot);
                }
            }
            // Invariants hold after every step.
            prop_assert_eq!(page.slot_count(), model.len());
        }

        // Full-content check, plus compaction preserves everything.
        prop_assert_eq!(&page.records(), &model);
        page.compact();
        prop_assert_eq!(&page.records(), &model);
        // Round-trip through raw bytes (disk write/read).
        let back = Page::from_bytes(page.as_bytes().to_vec().into_boxed_slice()).unwrap();
        prop_assert_eq!(&back.records(), &model);
    }

    #[test]
    fn header_fields_survive_arbitrary_ops(ops in page_ops(), plsn in any::<u64>()) {
        let mut page = Page::new(512, PageId(77), PageType::Internal);
        page.set_plsn(Lsn(plsn));
        page.set_level(3);
        page.set_right_sibling(PageId(42));
        let mut live = 0usize;
        for op in &ops {
            match op {
                PageOp::Insert { at, len, byte } => {
                    let slot = at % (live + 1);
                    if page.insert_record(slot, &vec![*byte; *len]).is_ok() {
                        live += 1;
                    }
                }
                PageOp::Remove { at } if live > 0 => {
                    page.remove_record(at % live);
                    live -= 1;
                }
                _ => {}
            }
        }
        prop_assert_eq!(page.plsn(), Lsn(plsn));
        prop_assert_eq!(page.level(), 3);
        prop_assert_eq!(page.right_sibling(), PageId(42));
        prop_assert_eq!(page.pid(), PageId(77));
        prop_assert_eq!(page.page_type(), PageType::Internal);
    }
}
