//! Property tests: the B-tree agrees with `std::collections::BTreeMap`
//! under arbitrary operation sequences, stays structurally valid, and its
//! SMO stream replays to the same tree.

use lr_buffer::BufferPool;
use lr_common::{IoModel, Lsn, PageId, SimClock, TableId};
use lr_core::Engine;
use lr_core::EngineConfig;
use lr_storage::{Page, SimDisk, SLOT_SIZE};
use lr_wal::SmoRecord;
use proptest::prelude::*;
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum TreeOp {
    Insert(u64, u8),
    Update(u64, u8),
    Delete(u64),
    Get(u64),
}

fn tree_ops() -> impl Strategy<Value = Vec<TreeOp>> {
    prop::collection::vec(
        prop_oneof![
            (0u64..200, any::<u8>()).prop_map(|(k, v)| TreeOp::Insert(k, v)),
            (0u64..200, any::<u8>()).prop_map(|(k, v)| TreeOp::Update(k, v)),
            (0u64..200).prop_map(TreeOp::Delete),
            (0u64..200).prop_map(TreeOp::Get),
        ],
        1..300,
    )
}

fn fresh_pool() -> BufferPool {
    let disk = SimDisk::new(256, 1, SimClock::new(), IoModel::zero());
    let pool = BufferPool::new(Box::new(disk), 2048, Box::new(|l| l));
    pool.set_elsn(Lsn::MAX);
    pool
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn btree_matches_model(ops in tree_ops()) {
        let pool = fresh_pool();
        let mut tree = lr_btree::BTree::create(&pool, TableId(1)).unwrap();
        let mut model: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
        let mut lsn = 0u64;
        let mut smo_log: Vec<(Lsn, SmoRecord)> = Vec::new();

        for op in &ops {
            match op {
                TreeOp::Insert(k, v) => {
                    let value = vec![*v; 16];
                    if model.contains_key(k) {
                        // Engine-level uniqueness: skip (DuplicateKey path
                        // is unit-tested).
                        continue;
                    }
                    let mut smo = |rec: SmoRecord| {
                        lsn += 1;
                        smo_log.push((Lsn(lsn), rec));
                        Lsn(lsn)
                    };
                    let leaf = tree
                        .ensure_room(&pool, *k, 8 + 16 + SLOT_SIZE, &mut smo)
                        .unwrap();
                    lsn += 1;
                    tree.apply_insert(&pool, leaf, *k, &value, Lsn(lsn)).unwrap();
                    model.insert(*k, value);
                }
                TreeOp::Update(k, v) => {
                    if !model.contains_key(k) {
                        continue;
                    }
                    let value = vec![*v; 16];
                    let leaf = tree.find_leaf(&pool, *k).unwrap().leaf;
                    lsn += 1;
                    tree.apply_update(&pool, leaf, *k, &value, Lsn(lsn)).unwrap();
                    model.insert(*k, value);
                }
                TreeOp::Delete(k) => {
                    if !model.contains_key(k) {
                        continue;
                    }
                    let leaf = tree.find_leaf(&pool, *k).unwrap().leaf;
                    lsn += 1;
                    tree.apply_delete(&pool, leaf, *k, Lsn(lsn)).unwrap();
                    model.remove(k);
                }
                TreeOp::Get(k) => {
                    let got = tree.get(&pool, *k).unwrap();
                    prop_assert_eq!(got.as_deref(), model.get(k).map(|v| v.as_slice()));
                }
            }
        }

        // Full-content agreement and structural validity.
        let all = tree.scan_all(&pool).unwrap();
        let expect: Vec<(u64, Vec<u8>)> =
            model.iter().map(|(k, v)| (*k, v.clone())).collect();
        prop_assert_eq!(all, expect);
        let summary = lr_btree::verify_tree(&tree, &pool).unwrap();
        prop_assert_eq!(summary.records, model.len() as u64);

        // SMO images replay onto a fresh disk to the same index structure:
        // install every image in order on a second pool, then verify the
        // final tree routes every key to the same leaf.
        if !smo_log.is_empty() {
            let disk2 = SimDisk::new(
                256,
                pool.disk().num_pages(),
                SimClock::new(),
                IoModel::zero(),
            );
            let pool2 = BufferPool::new(Box::new(disk2), 2048, Box::new(|l| l));
            pool2.set_elsn(Lsn::MAX);
            let mut root2 = PageId(1); // BTree::create used the first data page
            for (lsn, rec) in &smo_log {
                for (pid, image) in &rec.pages {
                    let page = Page::from_bytes(image.clone().into_boxed_slice()).unwrap();
                    pool2.install_page(*pid, page, *lsn).unwrap();
                }
                if let Some((_, new_root)) = rec.new_root {
                    root2 = new_root;
                }
            }
            let tree2 = lr_btree::BTree::attach(TableId(1), root2);
            for k in model.keys() {
                let a = tree.find_leaf_pid(&pool, *k).unwrap().0;
                let b = tree2.find_leaf_pid(&pool2, *k).unwrap().0;
                prop_assert_eq!(a, b, "SMO replay routes key {} elsewhere", k);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// Engine-level: arbitrary committed updates survive crash+recovery.
    #[test]
    fn engine_survives_random_committed_updates(
        keys in prop::collection::vec(0u64..500, 1..60),
        seed in any::<u64>(),
    ) {
        let cfg = EngineConfig {
            initial_rows: 500,
            pool_pages: 24,
            io_model: IoModel::zero(),
            ..EngineConfig::default()
        };
        let engine = Engine::build(cfg).unwrap();
        let mut expected: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
        let txn = engine.begin().unwrap();
        for (i, k) in keys.iter().enumerate() {
            let value = format!("{seed}-{i}-{k}").into_bytes();
            engine.update(txn, *k, value.clone()).unwrap();
            expected.insert(*k, value);
        }
        engine.commit(txn).unwrap();
        engine.crash();
        engine.recover(lr_core::RecoveryMethod::Log1).unwrap();
        for (k, v) in &expected {
            let got = engine.read(lr_core::DEFAULT_TABLE, *k).unwrap();
            prop_assert_eq!(got.as_ref(), Some(v));
        }
    }
}
