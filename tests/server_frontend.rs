//! Acceptance tests for the networked server front-end: the full
//! session surface over both the in-process channel front and real
//! loopback TCP, typed admission rejection at the cap, abort-on-
//! disconnect (a vanished client strands no key locks), and the
//! `server_`-prefixed metrics the server folds into the engine export.

use lr_common::{Error, IoModel};
use lr_core::{Engine, EngineConfig, EventKind, DEFAULT_TABLE};
use lr_server::{Client, Server, ServerConfig, ServerStats};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn test_engine(initial_rows: u64, trace: bool) -> Arc<Engine> {
    Engine::build(EngineConfig {
        initial_rows,
        pool_pages: 64,
        io_model: IoModel::zero(),
        trace,
        ..EngineConfig::default()
    })
    .expect("engine build")
    .into_shared()
}

/// Poll until `cond` holds; the server tears sessions down on its own
/// handler threads, so observable effects of a disconnect are async.
fn wait_for(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// Every session operation, one round trip each, over one connection.
fn exercise_full_surface(client: &mut Client) {
    client.ping().unwrap();

    // Insert + read + scan inside one transaction.
    client.begin().unwrap();
    client.insert(DEFAULT_TABLE, 1_000, b"alpha".to_vec()).unwrap();
    client.insert(DEFAULT_TABLE, 1_001, b"beta".to_vec()).unwrap();
    assert_eq!(client.read(DEFAULT_TABLE, 1_000).unwrap().unwrap(), b"alpha");
    let rows = client.scan_range(DEFAULT_TABLE, 1_000, 1_001).unwrap();
    assert_eq!(rows.len(), 2);
    client.commit().unwrap();

    // Savepoint + partial rollback: the rolled-back update vanishes,
    // the pre-savepoint update survives the commit.
    client.begin().unwrap();
    client.update(DEFAULT_TABLE, 1_000, b"alpha-2".to_vec()).unwrap();
    let sp = client.savepoint().unwrap();
    client.update(DEFAULT_TABLE, 1_001, b"beta-2".to_vec()).unwrap();
    assert_eq!(client.rollback_to(sp).unwrap(), 1, "one op undone");
    client.commit().unwrap();
    assert_eq!(client.read(DEFAULT_TABLE, 1_000).unwrap().unwrap(), b"alpha-2");
    assert_eq!(client.read(DEFAULT_TABLE, 1_001).unwrap().unwrap(), b"beta");

    // Abort undoes everything since begin.
    client.begin().unwrap();
    client.update(DEFAULT_TABLE, 1_000, b"doomed".to_vec()).unwrap();
    client.delete(DEFAULT_TABLE, 1_001).unwrap();
    assert_eq!(client.abort().unwrap(), 2);
    assert_eq!(client.read(DEFAULT_TABLE, 1_000).unwrap().unwrap(), b"alpha-2");
    assert_eq!(client.read(DEFAULT_TABLE, 1_001).unwrap().unwrap(), b"beta");

    // read_for_update locks; run_txn drives a whole retried transaction.
    client
        .run_txn(10, |c| {
            let v = c.read_for_update(DEFAULT_TABLE, 1_000)?.unwrap();
            c.update(DEFAULT_TABLE, 1_000, [v, b"!".to_vec()].concat())
        })
        .unwrap();
    assert_eq!(client.read(DEFAULT_TABLE, 1_000).unwrap().unwrap(), b"alpha-2!");

    // Typed engine errors cross the wire and leave the connection fine:
    // commit with no open transaction is an error, not a hangup.
    assert!(client.commit().is_err(), "commit without begin is a typed error");
    client.ping().unwrap();

    // Metrics endpoints answer with text carrying the server_ prefix.
    let prom = client.server_metrics_prometheus().unwrap();
    assert!(prom.contains("server_requests"), "prometheus export lacks server_requests");
    let json = client.server_stats_json().unwrap();
    assert!(json.contains("server_requests"), "json export lacks server_requests");
}

#[test]
fn full_session_surface_over_the_channel_front() {
    let (server, connector) =
        Server::start_channel(test_engine(16, false), ServerConfig::default())
            .expect("server start");
    let mut client = Client::connect_channel(&connector).unwrap();
    assert!(client.session_id() >= 1);
    exercise_full_surface(&mut client);
    drop(client);
    wait_for("teardown", || server.active_sessions() == 0);
    assert_eq!(server.stats().connections_accepted, 1);
    server.engine().tc().locks().assert_no_leaks();
}

#[test]
fn full_session_surface_over_loopback_tcp() {
    let (server, addr) =
        Server::start_tcp(test_engine(16, false), ServerConfig::default()).expect("server start");
    let mut client = Client::connect_tcp(addr).unwrap();
    exercise_full_surface(&mut client);
    drop(client);
    wait_for("teardown", || server.active_sessions() == 0);
    server.engine().tc().locks().assert_no_leaks();
}

#[test]
fn concurrent_tcp_clients_each_get_their_own_session() {
    let (server, addr) =
        Server::start_tcp(test_engine(0, false), ServerConfig::default()).expect("server start");
    std::thread::scope(|s| {
        for t in 0..4u64 {
            s.spawn(move || {
                let mut c = Client::connect_tcp(addr).unwrap();
                for i in 0..20u64 {
                    let k = t * 1_000 + i;
                    c.run_txn(100, |c| c.insert(DEFAULT_TABLE, k, k.to_le_bytes().to_vec()))
                        .unwrap();
                }
            });
        }
    });
    wait_for("teardown", || server.active_sessions() == 0);
    let mut check = Client::connect_tcp(addr).unwrap();
    for t in 0..4u64 {
        for i in 0..20u64 {
            let k = t * 1_000 + i;
            assert_eq!(check.read(DEFAULT_TABLE, k).unwrap().unwrap(), k.to_le_bytes());
        }
    }
    assert_eq!(server.stats().connections_accepted, 5);
    server.engine().tc().locks().assert_no_leaks();
}

#[test]
fn admission_cap_refuses_the_third_connection_with_typed_busy() {
    let (server, addr) =
        Server::start_tcp(test_engine(16, false), ServerConfig { max_sessions: 2 })
            .expect("server start");
    let c1 = Client::connect_tcp(addr).unwrap();
    let c2 = Client::connect_tcp(addr).unwrap();
    assert_eq!(c1.max_sessions(), 2);
    wait_for("both admitted", || server.active_sessions() == 2);

    // The third connection is refused during the handshake with the
    // typed busy error — not a hangup, not a timeout.
    match Client::connect_tcp(addr) {
        Err(Error::ServerBusy { active: 2, cap: 2 }) => {}
        Err(other) => panic!("expected ServerBusy {{active: 2, cap: 2}}, got {other:?}"),
        Ok(_) => panic!("third connection was admitted past the cap"),
    }
    assert_eq!(server.stats().connections_rejected, 1);

    // Capacity freed by a disconnect is immediately reusable.
    drop(c2);
    wait_for("slot freed", || server.active_sessions() == 1);
    let mut c3 = Client::connect_tcp(addr).unwrap();
    c3.ping().unwrap();
    drop((c1, c3));
    wait_for("teardown", || server.active_sessions() == 0);
}

#[test]
fn disconnect_mid_transaction_aborts_and_strands_no_locks() {
    let (server, addr) =
        Server::start_tcp(test_engine(16, true), ServerConfig::default()).expect("server start");

    // Seed a key, then die with an uncommitted update against it.
    let mut doomed = Client::connect_tcp(addr).unwrap();
    doomed.run_txn(10, |c| c.insert(DEFAULT_TABLE, 7_777, b"seed".to_vec())).unwrap();
    doomed.begin().unwrap();
    doomed.update(DEFAULT_TABLE, 7_777, b"uncommitted".to_vec()).unwrap();
    drop(doomed); // connection dies mid-transaction

    wait_for("disconnect abort", || server.stats().disconnect_aborts == 1);
    wait_for("teardown", || server.active_sessions() == 0);
    server.engine().tc().locks().assert_no_leaks();

    // A fresh connection can immediately rewrite the same key — the
    // dead client's write lock did not leak — and the uncommitted
    // update is gone.
    let mut fresh = Client::connect_tcp(addr).unwrap();
    fresh.begin().unwrap();
    assert_eq!(fresh.read_for_update(DEFAULT_TABLE, 7_777).unwrap().unwrap(), b"seed");
    fresh.update(DEFAULT_TABLE, 7_777, b"rewritten".to_vec()).unwrap();
    fresh.commit().unwrap();
    assert_eq!(fresh.read(DEFAULT_TABLE, 7_777).unwrap().unwrap(), b"rewritten");
    drop(fresh);
    wait_for("teardown", || server.active_sessions() == 0);

    // The trace journal recorded both lifecycles, with the abort flagged.
    let events = server.engine().drain_trace();
    let connects =
        events.iter().filter(|e| matches!(e.kind, EventKind::ClientConnect { .. })).count();
    let aborted_disconnects = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::ClientDisconnect { aborted_txn: true, .. }))
        .count();
    assert_eq!(connects, 2, "both connections traced");
    assert_eq!(aborted_disconnects, 1, "exactly one disconnect aborted a transaction");
}

#[test]
fn server_metrics_enumerate_every_counter_under_the_server_prefix() {
    let (server, connector) =
        Server::start_channel(test_engine(16, false), ServerConfig::default())
            .expect("server start");
    let mut client = Client::connect_channel(&connector).unwrap();
    client.run_txn(10, |c| c.insert(DEFAULT_TABLE, 5_000, b"x".to_vec())).unwrap();

    // Tripwire: every ServerStats counter and histogram must appear in
    // the export under the server_ prefix, alongside the gauges — a new
    // field that skips the export fails here by name.
    let prom = server.metrics().to_prometheus();
    for name in ServerStats::COUNTER_NAMES {
        assert!(prom.contains(&format!("server_{name}")), "export lacks server_{name}");
    }
    for name in ServerStats::HISTOGRAM_NAMES {
        assert!(prom.contains(&format!("server_{name}")), "export lacks server_{name}");
    }
    assert!(prom.contains("server_active_sessions"), "export lacks server_active_sessions");
    assert!(prom.contains("server_max_sessions"), "export lacks server_max_sessions");

    // And the counters move: this connection performed requests.
    let stats = server.stats();
    assert!(stats.requests >= 4, "requests counted: {}", stats.requests);
    assert!(stats.bytes_in > 0 && stats.bytes_out > 0, "byte counters move");
    assert!(stats.request_latency_us.count() >= 4, "latency histogram records");
}
