//! Multi-table workloads: the catalog, per-table trees, cross-table
//! transactions and recovery must all compose. The paper's evaluation uses
//! one table; the architecture does not, and neither does this engine.

use lr_common::{IoModel, TableId};
use lr_core::{Engine, EngineConfig, RecoveryMethod, DEFAULT_TABLE};

const ORDERS: TableId = TableId(2);
const ITEMS: TableId = TableId(3);

fn engine() -> Engine {
    let cfg = EngineConfig {
        initial_rows: 1_000,
        pool_pages: 48,
        io_model: IoModel::zero(),
        ..EngineConfig::default()
    };
    let e = Engine::build(cfg).unwrap();
    e.create_table(ORDERS).unwrap();
    e.create_table(ITEMS).unwrap();
    e
}

#[test]
fn cross_table_transaction_commits_atomically_across_crash() {
    let e = engine();
    let t = e.begin().unwrap();
    for i in 0..200u64 {
        e.insert_in(t, ORDERS, i, format!("order-{i}").into_bytes()).unwrap();
        e.insert_in(t, ITEMS, i, format!("item-{i}").into_bytes()).unwrap();
        e.update_in(t, DEFAULT_TABLE, i, format!("touched-{i}").into_bytes()).unwrap();
    }
    e.commit(t).unwrap();
    e.checkpoint().unwrap();

    // Another cross-table txn left in flight at the crash.
    let loser = e.begin().unwrap();
    e.insert_in(loser, ORDERS, 9_999, b"phantom-order".to_vec()).unwrap();
    e.update_in(loser, ITEMS, 5, b"phantom-item".to_vec()).unwrap();
    e.crash();

    for method in [RecoveryMethod::Log1, RecoveryMethod::Sql1, RecoveryMethod::Log2] {
        let forked = e.fork_crashed().unwrap();
        forked.recover(method).unwrap();
        // Committed rows present in every table.
        assert_eq!(forked.read(ORDERS, 100).unwrap().unwrap(), b"order-100");
        assert_eq!(forked.read(ITEMS, 100).unwrap().unwrap(), b"item-100");
        assert_eq!(forked.read(DEFAULT_TABLE, 100).unwrap().unwrap(), b"touched-100");
        // Loser rolled back in every table.
        assert_eq!(forked.read(ORDERS, 9_999).unwrap(), None, "{method}");
        assert_eq!(forked.read(ITEMS, 5).unwrap().unwrap(), b"item-5", "{method}");
        // Trees verify.
        for table in [DEFAULT_TABLE, ORDERS, ITEMS] {
            forked.verify_table(table).unwrap();
        }
    }
}

#[test]
fn per_table_key_spaces_are_independent() {
    let e = engine();
    let t = e.begin().unwrap();
    e.insert_in(t, ORDERS, 42, b"order".to_vec()).unwrap();
    e.insert_in(t, ITEMS, 42, b"item".to_vec()).unwrap();
    e.commit(t).unwrap();
    assert_eq!(e.read(ORDERS, 42).unwrap().unwrap(), b"order");
    assert_eq!(e.read(ITEMS, 42).unwrap().unwrap(), b"item");
    // Key 42 in the default table is untouched bulk-load data.
    assert_eq!(e.read(DEFAULT_TABLE, 42).unwrap().unwrap(), e.config().initial_value(42));
    // Locks are per (table, key): two txns can hold key 7 in different tables.
    let t1 = e.begin().unwrap();
    let t2 = e.begin().unwrap();
    e.insert_in(t1, ORDERS, 7, b"a".to_vec()).unwrap();
    e.insert_in(t2, ITEMS, 7, b"b".to_vec()).unwrap();
    e.commit(t1).unwrap();
    e.commit(t2).unwrap();
}

#[test]
fn table_growth_smos_recover_per_table() {
    // Grow a secondary table enough to split, crash before flushing, and
    // confirm DC recovery rebuilds its tree (root may have moved).
    let e = engine();
    let t = e.begin().unwrap();
    for i in 0..2_000u64 {
        e.insert_in(t, ORDERS, i, vec![7u8; 64]).unwrap();
    }
    e.commit(t).unwrap();
    let summary_before = e.verify_table(ORDERS).unwrap();
    assert!(summary_before.height >= 2, "table must have grown");
    e.crash();
    e.recover(RecoveryMethod::Log1).unwrap();
    let summary_after = e.verify_table(ORDERS).unwrap();
    assert_eq!(summary_after.records, 2_000);
    assert_eq!(summary_after.height, summary_before.height);
    assert_eq!(e.read(ORDERS, 1_999).unwrap().unwrap(), vec![7u8; 64]);
}

#[test]
fn unknown_table_errors_cleanly() {
    let e = engine();
    let t = e.begin().unwrap();
    assert!(matches!(
        e.update_in(t, TableId(99), 1, vec![]),
        Err(lr_common::Error::UnknownTable(TableId(99)))
    ));
    assert!(matches!(e.read(TableId(99), 1), Err(lr_common::Error::UnknownTable(_))));
}
