//! Durability through real files: the page formats round-trip through a
//! [`FileDisk`], a DC can run on one, and a process-restart-shaped flow
//! (write → sync → drop → reopen) preserves committed state.

use lr_common::{Lsn, TableId};
use lr_dc::{DataComponent, DcConfig, WriteIntent};
use lr_storage::{Disk, FileDisk};
use lr_wal::{LogPayload, LogRecord, Wal};
use std::path::PathBuf;

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("lr-durability-{name}-{}", std::process::id()));
    p
}

const T: TableId = TableId(1);

#[test]
fn dc_on_file_disk_roundtrips_across_reopen() {
    let path = tmp("dc-reopen");
    let _ = std::fs::remove_file(&path);

    // Session 1: create, insert, flush everything, drop.
    {
        let mut disk = FileDisk::create(&path, 1024, 0).unwrap();
        DataComponent::format_disk(&mut disk).unwrap();
        let wal = Wal::new_shared(4096);
        let dc = DataComponent::open(Box::new(disk), wal, DcConfig::default()).unwrap();
        dc.create_table(T).unwrap();
        let mut lsn = 0u64;
        for k in 0..200u64 {
            let info = dc.prepare_write(T, k, WriteIntent::Insert { value_len: 32 }).unwrap();
            lsn += 1;
            let rec = LogRecord {
                lsn: Lsn(lsn),
                payload: LogPayload::Insert {
                    txn: lr_common::TxnId(1),
                    table: T,
                    key: k,
                    pid: info.pid,
                    prev_lsn: Lsn::NULL,
                    value: vec![k as u8; 32],
                },
            };
            dc.apply(&rec).unwrap();
        }
        dc.pool().flush_all().unwrap();
    }

    // Session 2: reopen the same file, read everything back.
    {
        let disk = FileDisk::open(&path, 1024).unwrap();
        assert!(disk.num_pages() > 1);
        let wal = Wal::new_shared(4096);
        let dc = DataComponent::open(Box::new(disk), wal, DcConfig::default()).unwrap();
        for k in (0..200u64).step_by(13) {
            assert_eq!(
                dc.read(T, k).unwrap().unwrap(),
                vec![k as u8; 32],
                "key {k} lost across reopen"
            );
        }
        let tree = dc.tree(T).unwrap().clone();
        let summary = lr_btree::verify_tree(&tree, dc.pool()).unwrap();
        assert_eq!(summary.records, 200);
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn unflushed_pages_do_not_survive_reopen() {
    // The inverse property: without flush_all, updates applied only in the
    // cache are gone after reopen — exactly why recovery exists.
    let path = tmp("dc-noflush");
    let _ = std::fs::remove_file(&path);
    {
        let mut disk = FileDisk::create(&path, 1024, 0).unwrap();
        DataComponent::format_disk(&mut disk).unwrap();
        let wal = Wal::new_shared(4096);
        let dc = DataComponent::open(Box::new(disk), wal, DcConfig::default()).unwrap();
        dc.create_table(T).unwrap();
        // The empty table itself is made durable; only the insert is not.
        let root = dc.table_root(T).unwrap();
        dc.pool().flush_page(root).unwrap();
        let info = dc.prepare_write(T, 1, WriteIntent::Insert { value_len: 8 }).unwrap();
        let rec = LogRecord {
            lsn: Lsn(10),
            payload: LogPayload::Insert {
                txn: lr_common::TxnId(1),
                table: T,
                key: 1,
                pid: info.pid,
                prev_lsn: Lsn::NULL,
                value: b"volatile".to_vec(),
            },
        };
        dc.apply(&rec).unwrap();
        // Drop without flushing: the insert lives only in the pool.
    }
    {
        let disk = FileDisk::open(&path, 1024).unwrap();
        let wal = Wal::new_shared(4096);
        let dc = DataComponent::open(Box::new(disk), wal, DcConfig::default()).unwrap();
        assert_eq!(dc.read(T, 1).unwrap(), None, "unflushed insert must be absent");
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn full_process_restart_with_file_disk_and_persisted_log() {
    // Session 1: a persistent engine on a real file-backed disk. Committed
    // work is durable via (disk pages flushed by checkpoint) + (log file).
    use lr_core::{Engine, EngineConfig, RecoveryMethod, DEFAULT_TABLE};
    let dir = std::env::temp_dir();
    let db = dir.join(format!("lr-restart-db-{}", std::process::id()));
    let log = dir.join(format!("lr-restart-log-{}", std::process::id()));
    let _ = std::fs::remove_file(&db);
    let _ = std::fs::remove_file(&log);

    let cfg = EngineConfig {
        initial_rows: 400,
        pool_pages: 32,
        page_size: 1024,
        ..EngineConfig::default()
    };
    {
        let disk = FileDisk::create(&db, 1024, 0).unwrap();
        let engine = Engine::build_on_disk(Box::new(disk), cfg.clone()).unwrap();
        let t = engine.begin().unwrap();
        engine.update(t, 7, b"durable-update".to_vec()).unwrap();
        engine.insert(t, 50_000, b"durable-insert".to_vec()).unwrap();
        engine.commit(t).unwrap();
        engine.checkpoint().unwrap();
        // More work after the checkpoint — on the log, maybe not on disk.
        let t = engine.begin().unwrap();
        engine.update(t, 8, b"post-ckpt".to_vec()).unwrap();
        engine.commit(t).unwrap();
        // An in-flight transaction that must not survive.
        let loser = engine.begin().unwrap();
        engine.update(loser, 7, b"lost".to_vec()).unwrap();
        engine.persist_log(&log).unwrap();
        // Process "exits" here: engine dropped, cache contents gone.
    }

    // Session 2: reopen the disk + log, recover, verify.
    {
        let disk = FileDisk::open(&db, 1024).unwrap();
        let wal = lr_wal::Wal::load(&log, cfg.log_page_size).unwrap();
        let engine = Engine::open_existing(Box::new(disk), wal, cfg.clone()).unwrap();
        assert!(engine.is_crashed(), "restart begins in the crashed state");
        let report = engine.recover(RecoveryMethod::Log1).unwrap();
        assert!(report.breakdown.losers_undone >= 1, "in-flight txn rolled back");
        assert_eq!(engine.read(DEFAULT_TABLE, 7).unwrap().unwrap(), b"durable-update");
        assert_eq!(engine.read(DEFAULT_TABLE, 8).unwrap().unwrap(), b"post-ckpt");
        assert_eq!(engine.read(DEFAULT_TABLE, 50_000).unwrap().unwrap(), b"durable-insert");
        engine.verify_table(DEFAULT_TABLE).unwrap();
        // The reopened engine keeps working.
        let t = engine.begin().unwrap();
        engine.update(t, 9, b"second-life".to_vec()).unwrap();
        engine.commit(t).unwrap();
        assert_eq!(engine.read(DEFAULT_TABLE, 9).unwrap().unwrap(), b"second-life");
    }
    std::fs::remove_file(&db).unwrap();
    std::fs::remove_file(&log).unwrap();
}

#[test]
fn log_file_with_torn_tail_loads_cleanly() {
    use lr_common::TxnId;
    let path = std::env::temp_dir().join(format!("lr-torn-log-{}", std::process::id()));
    let mut wal = Wal::new(4096);
    for t in 0..10 {
        wal.append(&LogPayload::TxnBegin { txn: TxnId(t) });
    }
    wal.save(&path).unwrap();
    // Tear the file itself, as a crashed OS write would.
    let mut bytes = std::fs::read(&path).unwrap();
    bytes.truncate(bytes.len() - 5);
    std::fs::write(&path, &bytes).unwrap();
    let reloaded = Wal::load(&path, 4096).unwrap();
    assert_eq!(reloaded.record_count(), 9, "torn final record dropped");
    // Garbage file rejected outright.
    std::fs::write(&path, b"not a log").unwrap();
    assert!(Wal::load(&path, 4096).is_err());
    std::fs::remove_file(&path).unwrap();
}
