//! Acceptance tests for the unified observability layer: a bank-style
//! workload run with tracing on must answer the paper's measurement
//! questions **from the drained journal alone**, recovery must leave a
//! per-worker span timeline, and `Engine::metrics()` must round-trip
//! every counter through the Prometheus text exposition.

use lr_core::{Engine, EngineConfig, EventKind, RecoveryMethod, RecoveryOptions, DEFAULT_TABLE};
use lr_obs::metrics::{MetricValue, MetricsSnapshot};
use lr_obs::trace::validate_journal_line;
use std::collections::HashMap;
use std::sync::Arc;

/// Four sessions moving money between random account pairs: each
/// transfer reads both accounts and rewrites both, with enough
/// concurrency for group commit, no-wait conflicts and (possibly) OLC
/// restarts to show up in the journal.
fn run_bank(engine: &Arc<Engine>, threads: usize, transfers_per_thread: u64, accounts: u64) {
    std::thread::scope(|s| {
        for t in 0..threads as u64 {
            let mut session = Engine::session(engine);
            s.spawn(move || {
                // Deterministic per-thread key walk (no rand dependency).
                let mut x = 0x9e3779b97f4a7c15u64.wrapping_mul(t + 1);
                let mut next = move || {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    x
                };
                for i in 0..transfers_per_thread {
                    let from = next() % accounts;
                    let to = next() % accounts;
                    let note = format!("t{t}-{i}").into_bytes();
                    session
                        .run_txn(10_000, |s| {
                            let a = s.read_for_update(DEFAULT_TABLE, from)?;
                            let b = s.read_for_update(DEFAULT_TABLE, to)?;
                            assert!(a.is_some() && b.is_some(), "accounts preloaded");
                            s.update_in(DEFAULT_TABLE, from, note.clone())?;
                            s.update_in(DEFAULT_TABLE, to, note.clone())
                        })
                        .expect("transfer");
                }
            });
        }
    });
}

fn traced_engine(accounts: u64) -> Arc<Engine> {
    Engine::build(EngineConfig {
        initial_rows: accounts,
        pool_pages: 1_024,
        io_model: lr_common::IoModel::zero(),
        commit_force_us: 20,
        trace: true,
        ..EngineConfig::default()
    })
    .expect("engine build")
    .into_shared()
}

/// The tentpole acceptance criterion: per-txn commit latency,
/// group-commit batch sizes and OLC restarts by page — all derived from
/// the drained journal, cross-checked against the engine's own counters.
#[test]
fn bank_journal_answers_the_paper_questions() {
    let accounts = 2_000;
    let engine = traced_engine(accounts);
    run_bank(&engine, 4, 50, accounts);
    engine.checkpoint().expect("checkpoint");

    let metrics = engine.metrics();
    let events = engine.drain_trace();
    assert!(!events.is_empty(), "traced run must leave a journal");

    // The drain is globally ordered: strictly increasing sequence numbers.
    for w in events.windows(2) {
        assert!(w[0].seq < w[1].seq, "drain out of order: {} then {}", w[0].seq, w[1].seq);
    }
    // Every event renders to a schema-valid journal line.
    for ev in &events {
        let line = ev.to_json().render();
        validate_journal_line(&line).unwrap_or_else(|e| panic!("bad line {line}: {e}"));
    }

    // Per-txn commit latency: pair TxnBegin with TxnCommit by txn id.
    let mut begin_at: HashMap<u64, u64> = HashMap::new();
    let mut latencies: Vec<u64> = Vec::new();
    let mut force_batches: Vec<u64> = Vec::new();
    let mut piggybacked = 0u64;
    let mut restarts_by_page: HashMap<(u64, bool), u64> = HashMap::new();
    let mut ckpt = (0u64, 0u64);
    for ev in &events {
        match ev.kind {
            EventKind::TxnBegin { txn } => {
                begin_at.insert(txn, ev.t_us);
            }
            EventKind::TxnCommit { txn } => {
                let t0 = begin_at.remove(&txn).expect("commit without begin");
                latencies.push(ev.t_us - t0);
            }
            EventKind::GroupCommitForce { batch, .. } => force_batches.push(batch),
            EventKind::GroupCommitPiggyback { .. } => piggybacked += 1,
            EventKind::OlcRestart { pid, write } => {
                *restarts_by_page.entry((pid, write)).or_insert(0) += 1;
            }
            EventKind::CheckpointBegin { .. } => ckpt.0 += 1,
            EventKind::CheckpointEnd { .. } => ckpt.1 += 1,
            _ => {}
        }
    }

    // One latency sample per committed transaction, exactly.
    assert_eq!(latencies.len() as u64, metrics.counter("tc_commits").unwrap());
    // Group-commit batch sizes: one entry per force (checkpoint-bracket
    // forces legitimately cover zero commits), and the journal's
    // force/piggyback counts agree with the WAL's own counters. Every
    // commit is accounted for: it either joined a force batch or
    // piggybacked on an already-stable LSN.
    assert_eq!(force_batches.len() as u64, metrics.counter("engine_group_commit_forces").unwrap());
    assert_eq!(piggybacked, metrics.counter("engine_group_commit_piggybacked").unwrap());
    let batched: u64 = force_batches.iter().sum();
    let commits = metrics.counter("tc_commits").unwrap();
    assert!(batched > 0, "some commit must have ridden a force batch");
    assert!(batched <= commits);
    assert!(
        batched + piggybacked >= commits,
        "{batched} batched + {piggybacked} piggybacked must cover {commits} commits"
    );
    // OLC restarts by page: the journal's per-page tallies sum to the
    // pool's validation-failure and failed-upgrade counters.
    let read_restarts: u64 = restarts_by_page.iter().filter(|((_, w), _)| !w).map(|(_, c)| c).sum();
    let write_restarts: u64 =
        restarts_by_page.iter().filter(|((_, w), _)| *w).map(|(_, c)| c).sum();
    assert_eq!(read_restarts, metrics.counter("engine_optimistic_validation_failures").unwrap());
    assert_eq!(write_restarts, metrics.counter("engine_leaf_upgrades_failed").unwrap());
    // The checkpoint left its begin/end markers.
    assert_eq!(ckpt, (1, 1));
    // Nothing overflowed at this scale.
    assert_eq!(engine.trace().dropped_events(), 0);

    // A second drain starts empty — the first one consumed the journal.
    assert!(engine.drain_trace().is_empty());
}

/// Per-worker recovery phase spans: a crashed engine recovered with two
/// redo workers must journal an Analysis span, one Redo span per
/// worker, and an Undo span — each End carrying its busy time.
#[test]
fn recovery_leaves_a_per_worker_span_timeline() {
    let accounts = 2_000;
    let engine = traced_engine(accounts);
    run_bank(&engine, 2, 60, accounts);
    engine.crash();

    let fork = engine.fork_crashed().expect("fork crashed engine");
    fork.recover_with(RecoveryMethod::Log1, RecoveryOptions::with_workers(2))
        .expect("parallel recovery");
    let events = fork.drain_trace();

    // The fork's journal is its own: no transaction traffic from the
    // pre-crash run leaks in.
    assert!(
        !events.iter().any(|e| matches!(e.kind, EventKind::TxnBegin { .. })),
        "fork journal must not contain pre-crash workload events"
    );

    let mut starts: HashMap<(&str, u64), u64> = HashMap::new();
    let mut ends: HashMap<(&str, u64), u64> = HashMap::new();
    for ev in &events {
        match ev.kind {
            EventKind::RecoveryPhaseStart { phase, worker } => {
                starts.insert((phase.name(), worker), ev.t_us);
            }
            EventKind::RecoveryPhaseEnd { phase, worker, busy_us } => {
                ends.insert((phase.name(), worker), busy_us);
            }
            _ => {}
        }
    }
    // Every span that ended also started, on the same worker.
    for key in ends.keys() {
        assert!(starts.contains_key(key), "end without start for {key:?}");
    }
    assert!(ends.contains_key(&("analysis", 0)), "analysis span missing: {ends:?}");
    assert!(ends.contains_key(&("undo", 0)), "undo span missing: {ends:?}");
    let redo_workers: Vec<u64> =
        ends.keys().filter(|(p, _)| *p == "redo").map(|&(_, w)| w).collect();
    assert_eq!(
        {
            let mut w = redo_workers.clone();
            w.sort_unstable();
            w
        },
        vec![0, 1],
        "expected one redo span per worker"
    );

    // The recovered fork still answers reads (sanity that tracing did not
    // perturb recovery itself).
    assert!(fork.read(DEFAULT_TABLE, 0).expect("read").is_some());
}

/// `Engine::metrics()` → Prometheus text → parse: every counter and
/// gauge survives byte-exactly, and every histogram exports its
/// `_sum`/`_count`/`_max` series.
#[test]
fn metrics_prometheus_round_trip() {
    let accounts = 500;
    let engine = traced_engine(accounts);
    run_bank(&engine, 2, 20, accounts);
    engine.checkpoint().expect("checkpoint");

    let snap = engine.metrics();
    let parsed: HashMap<String, f64> =
        MetricsSnapshot::parse_prometheus(&snap.to_prometheus()).into_iter().collect();
    for (name, value) in &snap.metrics {
        match value {
            MetricValue::Counter(v) => {
                assert_eq!(parsed.get(name.as_str()), Some(&(*v as f64)), "counter {name}");
            }
            MetricValue::Gauge(v) => {
                assert_eq!(parsed.get(name.as_str()), Some(v), "gauge {name}");
            }
            MetricValue::Hist(h) => {
                assert_eq!(parsed.get(&format!("{name}_sum")), Some(&(h.sum() as f64)), "{name}");
                assert_eq!(
                    parsed.get(&format!("{name}_count")),
                    Some(&(h.count() as f64)),
                    "{name}"
                );
                assert_eq!(parsed.get(&format!("{name}_max")), Some(&(h.max() as f64)), "{name}");
            }
        }
    }
    // Work happened, so the big counters are live, not zero.
    assert!(parsed["tc_commits"] > 0.0);
    assert!(parsed["engine_group_commit_forces"] + parsed["engine_group_commit_piggybacked"] > 0.0);
}

/// Tripwire: adding a field to a stats struct without exporting it must
/// fail this test. `EngineStats` is checked through its `Debug` field
/// names; the `counter_struct!`-generated structs through their
/// `COUNTER_NAMES`/`HISTOGRAM_NAMES` enumerations.
#[test]
fn every_stats_field_is_exported() {
    let engine = traced_engine(200);
    run_bank(&engine, 1, 5, 200);
    let snap = engine.metrics();
    let names: Vec<&str> = snap.metrics.iter().map(|(n, _)| n.as_str()).collect();

    // Depth-1 field names of EngineStats, parsed out of the pretty Debug
    // rendering (4-space indent = top level).
    let dbg = format!("{:#?}", engine.stats());
    let mut checked = 0;
    for line in dbg.lines() {
        let Some(rest) = line.strip_prefix("    ") else { continue };
        if rest.starts_with(' ') {
            continue;
        }
        let Some((field, _)) = rest.split_once(':') else { continue };
        assert!(
            names.iter().any(|n| n.contains(field)),
            "EngineStats field {field} missing from Engine::metrics()"
        );
        checked += 1;
    }
    assert!(checked >= 20, "Debug parse saw too few EngineStats fields ({checked})");

    for c in lr_buffer::PoolStats::COUNTER_NAMES {
        assert!(names.contains(&format!("pool_{c}").as_str()), "pool counter {c} missing");
    }
    for h in lr_buffer::PoolStats::HISTOGRAM_NAMES {
        assert!(names.contains(&format!("pool_{h}").as_str()), "pool histogram {h} missing");
    }
    for c in lr_dc::dc::DcStats::COUNTER_NAMES {
        assert!(names.contains(&format!("dc_{c}").as_str()), "dc counter {c} missing");
    }
    for h in lr_dc::dc::DcStats::HISTOGRAM_NAMES {
        assert!(names.contains(&format!("dc_{h}").as_str()), "dc histogram {h} missing");
    }
    for c in lr_common::IoStats::COUNTER_NAMES {
        assert!(names.contains(&format!("io_{c}").as_str()), "io counter {c} missing");
    }
}

/// The maintenance service's metrics sampler: with a sampling period
/// configured, snapshots accumulate into the in-memory time series and
/// `delta_since` windows between them stay non-negative on counters.
#[test]
fn maintenance_sampler_builds_a_time_series() {
    let engine = Engine::build(EngineConfig {
        initial_rows: 500,
        pool_pages: 256,
        io_model: lr_common::IoModel::zero(),
        background_maintenance: true,
        metrics_sample_ms: 1,
        trace: true,
        ..EngineConfig::default()
    })
    .expect("engine build")
    .into_shared();

    run_bank(&engine, 2, 30, 500);
    // The sampler runs on real time; give it a few periods.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    while engine.metrics_history().len() < 2 && std::time::Instant::now() < deadline {
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    engine.stop_maintenance();

    let history = engine.metrics_history();
    assert!(history.len() >= 2, "sampler produced {} snapshots", history.len());
    for w in history.windows(2) {
        assert!(w[0].at_us <= w[1].at_us, "samples out of time order");
        let delta = w[1].delta_since(&w[0]);
        for (name, value) in &delta.metrics {
            if let MetricValue::Counter(_) = value {
                assert!(delta.counter(name).is_some(), "counter {name} lost in delta");
            }
        }
    }
}
