//! Property tests of the **DPT safety invariant** (§3): for any workload
//! and crash point, every constructed DPT must
//!
//! 1. contain every page that was genuinely dirty at the crash (except
//!    pages whose dirtying falls in the tail of the log, which the methods
//!    handle with the basic fallback), and
//! 2. assign each such page an rLSN no greater than the LSN of the
//!    operation that first dirtied it.
//!
//! Violating either silently skips redo work — the catastrophic failure
//! mode of a recovery system. The oracle is the buffer pool's runtime
//! dirty-frame table captured at the instant of the crash.

use lr_common::{IoModel, Lsn};
use lr_core::{Engine, EngineConfig, ShadowDb};
use lr_dc::{build_dpt_logical, build_dpt_sqlserver, find_recovery_window, DeltaDptMode};
use lr_workload::{run_to_crash, CrashScenario, KeyDist, OpMix, TxnGenerator, WorkloadSpec};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Params {
    seed: u64,
    pool_pages: usize,
    updates_per_ckpt: u64,
    checkpoints: u64,
    tail: u64,
    dirty_cap: usize,
    flush_cap: usize,
    zipf: bool,
}

fn params() -> impl Strategy<Value = Params> {
    (
        any::<u64>(),
        16usize..96,
        50u64..400,
        1u64..4,
        5u64..40,
        8usize..64,
        8usize..64,
        any::<bool>(),
    )
        .prop_map(
            |(
                seed,
                pool_pages,
                updates_per_ckpt,
                checkpoints,
                tail,
                dirty_cap,
                flush_cap,
                zipf,
            )| {
                Params {
                    seed,
                    pool_pages,
                    updates_per_ckpt,
                    checkpoints,
                    tail,
                    dirty_cap,
                    flush_cap,
                    zipf,
                }
            },
        )
}

fn run_case(p: &Params) {
    let cfg = EngineConfig {
        initial_rows: 2_000,
        pool_pages: p.pool_pages,
        io_model: IoModel::zero(),
        dirty_batch_cap: p.dirty_cap,
        flush_batch_cap: p.flush_cap,
        perfect_delta_lsns: true, // so the Perfect builder has real LSNs
        ..EngineConfig::default()
    };
    let mut shadow = ShadowDb::with_initial_rows(&cfg);
    let spec = WorkloadSpec {
        dist: if p.zipf { KeyDist::Zipf(0.9) } else { KeyDist::Uniform },
        mix: OpMix { update_pct: 85, read_pct: 5, insert_pct: 7, delete_pct: 3 },
        ..WorkloadSpec::paper_default(cfg.initial_rows, 64, p.seed)
    };
    let mut gen = TxnGenerator::new(spec);
    let mut engine = Engine::build(cfg).unwrap();
    let scenario = CrashScenario {
        updates_per_checkpoint: p.updates_per_ckpt,
        checkpoints_before_crash: p.checkpoints,
        tail_updates: p.tail,
        warm_cache: false, // keep cases fast; dirt accumulates regardless
    };
    let out = run_to_crash(&mut engine, &mut shadow, &mut gen, &scenario).unwrap();
    let truth = out.snapshot.dirty_truth.clone();

    let wal = engine.wal();
    let (_, rssp, window) = {
        let w = wal.lock();
        find_recovery_window(&w).unwrap()
    };

    // SQL Server DPT: the update records carry every dirtying, so no tail
    // exemption applies — the DPT must cover all dirty pages.
    let (sql_dpt, _) = build_dpt_sqlserver(&window);
    if let Some((pid, why)) = sql_dpt.safety_violation(&truth, Lsn::MAX) {
        panic!("SQL DPT unsafe for page {pid}: {why} (params {p:?})");
    }

    // Logical DPTs: pages first dirtied after the last Δ record's TC-LSN
    // are the tail's responsibility.
    for mode in [DeltaDptMode::Standard, DeltaDptMode::Perfect, DeltaDptMode::Reduced] {
        let analysis = build_dpt_logical(&window, rssp, mode);
        if let Some((pid, why)) = analysis.dpt.safety_violation(&truth, analysis.last_delta_tc_lsn)
        {
            panic!("logical DPT ({mode:?}) unsafe for page {pid}: {why} (params {p:?})");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn dpt_is_always_a_safe_superset(p in params()) {
        run_case(&p);
    }
}

#[test]
fn dpt_safety_on_the_paper_scenario() {
    // One deterministic, larger case shaped like §5.2.
    run_case(&Params {
        seed: 4242,
        pool_pages: 64,
        updates_per_ckpt: 400,
        checkpoints: 3,
        tail: 40,
        dirty_cap: 32,
        flush_cap: 32,
        zipf: false,
    });
}

#[test]
fn delta_dpt_spectrum_orders_as_appendix_d_argues() {
    // Appendix D.1: exact rLSNs can only tighten the table.
    let cfg = EngineConfig {
        initial_rows: 2_000,
        pool_pages: 48,
        io_model: IoModel::zero(),
        perfect_delta_lsns: true,
        dirty_batch_cap: 16,
        flush_batch_cap: 16,
        ..EngineConfig::default()
    };
    let mut shadow = ShadowDb::with_initial_rows(&cfg);
    let mut gen = TxnGenerator::new(WorkloadSpec::paper_default(cfg.initial_rows, 64, 5));
    let mut engine = Engine::build(cfg).unwrap();
    let scenario = CrashScenario {
        updates_per_checkpoint: 300,
        checkpoints_before_crash: 2,
        tail_updates: 20,
        warm_cache: false,
    };
    run_to_crash(&mut engine, &mut shadow, &mut gen, &scenario).unwrap();
    let wal = engine.wal();
    let (_, rssp, window) = {
        let w = wal.lock();
        find_recovery_window(&w).unwrap()
    };
    let std = build_dpt_logical(&window, rssp, DeltaDptMode::Standard);
    let perfect = build_dpt_logical(&window, rssp, DeltaDptMode::Perfect);
    let reduced = build_dpt_logical(&window, rssp, DeltaDptMode::Reduced);
    // D.2 logs least and prunes least: never smaller than the chosen point.
    assert!(std.dpt.len() <= reduced.dpt.len());
    // D.1's claim: with exact LSNs "the DC has enough information to
    // construct exactly the same DPT as SQL Server" — *excluding the log
    // tail*, which the logical methods handle with the basic fallback while
    // SQL's DPT covers it (§4.3). Compare over the pre-tail window.
    let pre_tail: Vec<_> =
        window.iter().filter(|r| r.lsn < perfect.last_delta_tc_lsn).cloned().collect();
    let (sql_pre_tail, _) = build_dpt_sqlserver(&pre_tail);
    // Exact per-dirtying LSNs can only tighten relative to SQL's
    // update-record approximation (SQL keeps flushed-but-recently-updated
    // pages conservatively; transitions prove them clean), so perfect is
    // bounded above by SQL's table — and below by the true dirty set,
    // which the safety property test already enforces.
    assert!(
        perfect.dpt.len() <= sql_pre_tail.len(),
        "perfect DPT ({}) must be no larger than SQL's pre-tail DPT ({})",
        perfect.dpt.len(),
        sql_pre_tail.len()
    );
    // (Per-page rLSN comparisons between the two schemes are *not* a
    // theorem once prune/raise histories interleave — each table's safety
    // is enforced independently by the property test above.)
}
