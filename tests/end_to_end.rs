//! End-to-end behavioural tests: the qualitative performance claims of
//! §5.3 must hold in the simulated-time domain, and the machinery
//! underneath them (tail handling, prefetch accounting, WAL discipline)
//! must be visible in the reports.

use lr_common::IoModel;
use lr_core::{Engine, EngineConfig, RecoveryMethod, RecoveryReport, ShadowDb, DEFAULT_TABLE};
use lr_workload::{run_to_crash, CrashScenario, KeyDist, TxnGenerator, WorkloadSpec};

/// A mid-sized rig: enough pages for the DPT to matter.
fn rig(seed: u64, pool_pages: usize) -> (EngineConfig, CrashScenario, u64) {
    let cfg = EngineConfig {
        initial_rows: 8_000, // ~250 data pages
        pool_pages,
        io_model: IoModel::default(), // timed!
        dirty_batch_cap: 32,
        flush_batch_cap: 32,
        ..EngineConfig::default()
    };
    let scenario = CrashScenario {
        updates_per_checkpoint: 600,
        checkpoints_before_crash: 3,
        // Tail kept proportionally small (paper: 100 of 40,000) — tail
        // pages are inherently synchronous for logical methods.
        tail_updates: 10,
        warm_cache: true,
    };
    (cfg, scenario, seed)
}

fn crash_and_recover(
    method: RecoveryMethod,
    seed: u64,
    pool_pages: usize,
) -> (RecoveryReport, Engine, ShadowDb) {
    let (cfg, scenario, seed) = rig(seed, pool_pages);
    let mut shadow = ShadowDb::with_initial_rows(&cfg);
    let mut gen = TxnGenerator::new(WorkloadSpec::paper_default(cfg.initial_rows, 100, seed));
    let mut engine = Engine::build(cfg).unwrap();
    run_to_crash(&mut engine, &mut shadow, &mut gen, &scenario).unwrap();
    let report = engine.recover(method).unwrap();
    shadow.verify_against(&engine).unwrap();
    (report, engine, shadow)
}

#[test]
fn dpt_cuts_logical_redo_time_and_fetches() {
    // §5.3: "The DPT dropped the logical redo time by 65% (from Log0 to
    // Log1)" at 512 MB. We assert the direction and a substantial factor,
    // not the exact percentage.
    let (log0, ..) = crash_and_recover(RecoveryMethod::Log0, 11, 64);
    let (log1, ..) = crash_and_recover(RecoveryMethod::Log1, 11, 64);
    assert!(
        log1.breakdown.data_pages_fetched < log0.breakdown.data_pages_fetched,
        "DPT must reduce data-page fetches: Log1 {} vs Log0 {}",
        log1.breakdown.data_pages_fetched,
        log0.breakdown.data_pages_fetched
    );
    assert!(
        log1.redo_ms() < log0.redo_ms() * 0.8,
        "DPT must cut redo time materially: Log1 {:.1}ms vs Log0 {:.1}ms",
        log1.redo_ms(),
        log0.redo_ms()
    );
    // And the skip counters explain why.
    assert!(log1.breakdown.skipped_no_dpt_entry + log1.breakdown.skipped_rlsn > 0);
}

#[test]
fn logical_with_dpt_tracks_physiological() {
    // §5.3: "Log1 redo time is practically the same as the SQL1 redo time"
    // — modulo the index-page burden, which is the only structural
    // difference (Appendix B). Allow a generous envelope.
    let (log1, ..) = crash_and_recover(RecoveryMethod::Log1, 13, 64);
    let (sql1, ..) = crash_and_recover(RecoveryMethod::Sql1, 13, 64);
    // §5.3: "Log1 issues exactly the same data page requests as SQL1."
    // In their engine the two DPTs coincided; with our background cleaner
    // the Δ-built table prunes flushed pages the analysis-built table
    // keeps conservatively, so logical may fetch *fewer* data pages —
    // never meaningfully more (that would break the competitiveness
    // argument).
    let (a, b) = (log1.breakdown.data_pages_fetched, sql1.breakdown.data_pages_fetched);
    assert!(
        (a as f64) <= (b as f64 * 1.05).max(b as f64 + 8.0),
        "Log1 ({a}) must not fetch more data pages than SQL1 ({b})"
    );
    assert!(
        log1.redo_ms() <= sql1.redo_ms() * 2.0,
        "Log1 {:.1}ms vs SQL1 {:.1}ms — difference should be the index burden only",
        log1.redo_ms(),
        sql1.redo_ms()
    );
    assert!(log1.breakdown.index_pages_fetched > 0, "logical redo must have paid for index pages");
}

#[test]
fn prefetch_reduces_stalls_by_orders_of_magnitude() {
    // §5.3: "Prefetching reduces stalls for both logical and SQL Server
    // recovery by two orders of magnitude. Running time reduction is
    // smaller..."
    let (log1, ..) = crash_and_recover(RecoveryMethod::Log1, 17, 64);
    let (log2, ..) = crash_and_recover(RecoveryMethod::Log2, 17, 64);
    assert!(log2.breakdown.prefetch_pages > 0, "Log2 must actually prefetch");
    assert!(
        log2.breakdown.data_stall_events * 2 < log1.breakdown.data_stall_events.max(1),
        "prefetch must slash stall events: Log2 {} vs Log1 {}",
        log2.breakdown.data_stall_events,
        log1.breakdown.data_stall_events
    );
    assert!(
        log2.breakdown.data_stall_us < log1.breakdown.data_stall_us,
        "total stall time must drop: Log2 {}us vs Log1 {}us",
        log2.breakdown.data_stall_us,
        log1.breakdown.data_stall_us
    );
    assert!(log2.redo_ms() < log1.redo_ms(), "and redo time should drop too");

    let (sql1, ..) = crash_and_recover(RecoveryMethod::Sql1, 17, 64);
    let (sql2, ..) = crash_and_recover(RecoveryMethod::Sql2, 17, 64);
    assert!(sql2.breakdown.prefetch_pages > 0);
    assert!(sql2.redo_ms() < sql1.redo_ms());
}

#[test]
fn tail_of_log_falls_back_to_basic_redo() {
    let (log1, ..) = crash_and_recover(RecoveryMethod::Log1, 19, 64);
    assert!(
        log1.breakdown.tail_records > 0,
        "the crash scenario leaves a tail; Log1 must process it basically"
    );
    // Tail records are bounded by the scenario's tail length plus the few
    // records of the final in-flight transaction.
    assert!(
        log1.breakdown.tail_records <= 10 + 10,
        "tail unexpectedly large: {}",
        log1.breakdown.tail_records
    );
}

#[test]
fn index_preload_loads_the_whole_index() {
    let (log2, engine, _) = crash_and_recover(RecoveryMethod::Log2, 23, 64);
    let summary = engine.verify_table(DEFAULT_TABLE).unwrap();
    assert_eq!(
        log2.index_pages_loaded, summary.internal_pages,
        "preload must touch every internal page exactly once"
    );
    assert!(log2.breakdown.index_preload_us > 0);
}

#[test]
fn skew_shrinks_the_dpt() {
    // Appendix B: "The better the page locality of the workload, the fewer
    // unique pages appear in update log records, and hence the smaller the
    // DPT size."
    let run = |dist: KeyDist| {
        // Cache larger than the whole table and the background cleaner
        // disabled, so the dirty set is bounded by workload locality alone.
        let cfg = EngineConfig {
            initial_rows: 8_000,
            pool_pages: 400,
            io_model: IoModel::zero(),
            dirty_batch_cap: 32,
            flush_batch_cap: 32,
            dirty_watermark: 1.0,
            ..EngineConfig::default()
        };
        let mut shadow = ShadowDb::with_initial_rows(&cfg);
        let spec = WorkloadSpec { dist, ..WorkloadSpec::paper_default(cfg.initial_rows, 100, 29) };
        let mut gen = TxnGenerator::new(spec);
        let mut engine = Engine::build(cfg).unwrap();
        let scenario = CrashScenario {
            updates_per_checkpoint: 600,
            checkpoints_before_crash: 2,
            tail_updates: 40,
            warm_cache: false,
        };
        run_to_crash(&mut engine, &mut shadow, &mut gen, &scenario).unwrap();
        let report = engine.recover(RecoveryMethod::Log1).unwrap();
        report.breakdown.dpt_size
    };
    let uniform = run(KeyDist::Uniform);
    let skewed = run(KeyDist::Zipf(0.99));
    assert!(skewed < uniform, "Zipf DPT ({skewed}) should be smaller than uniform DPT ({uniform})");
}

#[test]
fn wal_rule_never_violated_under_pressure() {
    // A tiny cache (cleaner disabled) forces constant dirty evictions;
    // every flush must pass the eLSN gate (on-demand EOSL), never error.
    let cfg = EngineConfig {
        initial_rows: 4_000,
        pool_pages: 16,
        io_model: IoModel::zero(),
        dirty_watermark: 1.0,
        ..EngineConfig::default()
    };
    let engine = Engine::build(cfg).unwrap();
    for round in 0..30u64 {
        let t = engine.begin().unwrap();
        for i in 0..10u64 {
            let key = (round * 131 + i * 17) % 4_000;
            engine.update(t, key, vec![round as u8; 100]).unwrap();
        }
        engine.commit(t).unwrap();
    }
    let stats = engine.dc().pool().stats();
    assert!(stats.dirty_evictions > 0, "pressure test must actually evict dirt");
}

#[test]
fn report_accounting_is_internally_consistent() {
    let (r, ..) = crash_and_recover(RecoveryMethod::Log1, 31, 64);
    let b = &r.breakdown;
    // Every examined record was either skipped at some stage, re-applied,
    // or fell into the tail and then hit the pLSN test / was applied.
    assert_eq!(
        b.redo_records_seen,
        b.skipped_no_dpt_entry + b.skipped_rlsn + b.skipped_plsn + b.ops_reapplied,
        "redo-test accounting must add up: {b:?}"
    );
    assert!(b.total_us() >= b.redo_us);
    assert_eq!(r.window_data_ops, b.redo_records_seen);
    assert!(r.breakdown.dpt_size > 0);
}

#[test]
fn range_scans_survive_recovery() {
    let cfg = EngineConfig {
        initial_rows: 5_000,
        pool_pages: 48,
        io_model: IoModel::zero(),
        ..EngineConfig::default()
    };
    let e = Engine::build(cfg).unwrap();
    let t = e.begin().unwrap();
    for k in 100..200u64 {
        e.update(t, k, format!("range-{k}").into_bytes()).unwrap();
    }
    e.commit(t).unwrap();
    e.crash();
    e.recover(RecoveryMethod::Log2).unwrap();
    let rows = e.scan_range(DEFAULT_TABLE, 150, 159).unwrap();
    assert_eq!(rows.len(), 10);
    for (i, (k, v)) in rows.iter().enumerate() {
        assert_eq!(*k, 150 + i as u64);
        assert_eq!(v, format!("range-{k}").as_bytes());
    }
    // Empty and boundary ranges behave.
    assert!(e.scan_range(DEFAULT_TABLE, 10_000, 20_000).unwrap().is_empty());
    assert_eq!(e.scan_range(DEFAULT_TABLE, 4_999, 4_999).unwrap().len(), 1);
}

#[test]
fn delta_log_volume_is_modest() {
    // §5.1: "This auxiliary information is a very small part of the log."
    let cfg = EngineConfig {
        initial_rows: 8_000,
        pool_pages: 64,
        io_model: IoModel::zero(),
        dirty_batch_cap: 32,
        flush_batch_cap: 32,
        ..EngineConfig::default()
    };
    let mut shadow = lr_core::ShadowDb::with_initial_rows(&cfg);
    let mut gen = lr_workload::TxnGenerator::new(lr_workload::WorkloadSpec::paper_default(
        cfg.initial_rows,
        100,
        77,
    ));
    let mut engine = Engine::build(cfg).unwrap();
    let scenario = lr_workload::CrashScenario {
        updates_per_checkpoint: 600,
        checkpoints_before_crash: 3,
        tail_updates: 10,
        warm_cache: true,
    };
    lr_workload::run_to_crash(&mut engine, &mut shadow, &mut gen, &scenario).unwrap();
    let records = engine.wal().lock().scan_from(lr_common::Lsn::NULL).unwrap();
    let stats = lr_wal::LogStats::from_records(&records);
    assert!(stats.delta_records > 0);
    assert!(stats.bw_records > 0);
    assert!(
        stats.delta_byte_fraction() < 0.10,
        "Δ overhead {:.1}% of log bytes — should be 'a very small part'",
        100.0 * stats.delta_byte_fraction()
    );
    // SMO volume is also small relative to data (update-only => no SMOs at
    // all after load; the assertion documents it).
    assert!(stats.smo_bytes <= stats.data_op_bytes / 10);
}
