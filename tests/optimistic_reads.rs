//! Optimistic-read correctness under churn.
//!
//! The latch-free read path returns values without taking the table latch
//! or any frame latch, validating per-frame seqlock versions instead. The
//! suite drives it against everything that can invalidate a frame at once
//! — concurrent updaters, cache-miss evictions in a small pool, B-tree
//! splits from fresh inserts, and merges from deletes — and asserts that
//! every observed value is one some writer actually produced (never torn,
//! never from a recycled frame), while the fallback counters show the
//! optimistic path is doing real work, not falling back wholesale.

use lr_core::{Engine, EngineConfig, DEFAULT_TABLE};
use lr_workload::{run_concurrent, ConcurrentScenario};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Fixed-width value encoding `[key: 8][version: 8][padding]` — updates
/// never change the length, so they stay on the shared fast path, and a
/// reader can verify any observed value against the writer protocol.
fn encoded(key: u64, version: u64) -> Vec<u8> {
    let mut v = Vec::with_capacity(32);
    v.extend_from_slice(&key.to_le_bytes());
    v.extend_from_slice(&version.to_le_bytes());
    v.resize(32, 0xA5);
    v
}

fn decode(key: u64, value: &[u8]) -> u64 {
    assert_eq!(value.len(), 32, "torn value length for key {key}");
    assert_eq!(
        u64::from_le_bytes(value[..8].try_into().unwrap()),
        key,
        "value for key {key} carries another key's bytes — torn or recycled read"
    );
    assert!(value[16..].iter().all(|b| *b == 0xA5), "torn padding for key {key}");
    u64::from_le_bytes(value[8..16].try_into().unwrap())
}

/// Readers hammer point reads and range scans while updaters bump
/// versions, an inserter forces splits, a deleter (with leaf merging
/// enabled) forces merges, and a deliberately small pool keeps the clock
/// evictor invalidating frames the whole time. Every validated value must
/// decode cleanly and carry a version the writer protocol has reached.
#[test]
fn optimistic_reads_under_churn_observe_only_committed_values() {
    const KEYS: u64 = 512;
    const ROUNDS: u64 = 150;

    let engine = Engine::build(EngineConfig {
        initial_rows: 0,
        // Small pages + small pool: the working set spans a few hundred
        // leaves but only 64 frames, so the clock evictor and the
        // optimistic readers race continuously.
        page_size: 256,
        pool_pages: 64,
        merge_min_fill: 0.3,
        io_model: lr_common::IoModel::zero(),
        ..EngineConfig::default()
    })
    .unwrap()
    .into_shared();

    // Seed the table with version-0 values through the normal write path.
    {
        let mut s = Engine::session(&engine);
        for key in 0..KEYS {
            s.run_txn(10, |s| s.insert_in(DEFAULT_TABLE, key, encoded(key, 0))).unwrap();
        }
    }

    // published[k] = highest version committed for key k. A reader may
    // also observe `published + 1` (the in-flight update racing commit).
    let published: Arc<Vec<AtomicU64>> = Arc::new((0..KEYS).map(|_| AtomicU64::new(0)).collect());
    let stop = Arc::new(AtomicBool::new(false));

    let reader_calls = std::thread::scope(|scope| {
        // Two updaters on disjoint key stripes (no lock conflicts with
        // each other; readers are lock-free anyway).
        for stripe in 0..2u64 {
            let engine = engine.clone();
            let published = published.clone();
            scope.spawn(move || {
                let mut s = Engine::session(&engine);
                for round in 1..=ROUNDS {
                    for key in (stripe..KEYS).step_by(2) {
                        s.run_txn(100, |s| s.update_in(DEFAULT_TABLE, key, encoded(key, round)))
                            .unwrap();
                        published[key as usize].store(round, Ordering::Release);
                    }
                }
            });
        }
        // Inserter: fresh high keys force leaf/root splits (SMOs) while
        // readers descend; deleter work rides along and, with
        // merge_min_fill on, shrinks leaves back (merge SMOs).
        {
            let engine = engine.clone();
            let stop = stop.clone();
            scope.spawn(move || {
                let mut s = Engine::session(&engine);
                let mut next = 1_000_000u64;
                while !stop.load(Ordering::Relaxed) {
                    for _ in 0..64 {
                        let k = next;
                        next += 1;
                        s.run_txn(100, |s| s.insert_in(DEFAULT_TABLE, k, encoded(k, 0))).unwrap();
                    }
                    for k in (next - 64)..next {
                        s.run_txn(100, |s| s.delete_in(DEFAULT_TABLE, k)).unwrap();
                    }
                }
            });
        }
        // Readers: point reads + range scans, checking every observation.
        let mut readers = Vec::new();
        for r in 0..2u64 {
            let engine = engine.clone();
            let published = published.clone();
            let stop = stop.clone();
            readers.push(scope.spawn(move || {
                let mut observed = 0u64;
                let mut calls = 0u64;
                let mut x = 0x9E37_79B9u64.wrapping_add(r);
                while !stop.load(Ordering::Relaxed) {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let key = x % KEYS;
                    calls += 1;
                    if let Some(v) = engine.read(DEFAULT_TABLE, key).unwrap() {
                        let version = decode(key, &v);
                        let max_ok = published[key as usize].load(Ordering::Acquire) + 1;
                        assert!(
                            version <= max_ok,
                            "key {key}: observed version {version} beyond anything \
                             written (published {})",
                            max_ok - 1
                        );
                        observed += 1;
                    }
                    // Short range scan around the key: sorted, in-bounds,
                    // every row decodable.
                    let to = (key + 16).min(KEYS - 1);
                    calls += 1;
                    let rows = engine.scan_range(DEFAULT_TABLE, key, to).unwrap();
                    let mut prev = None;
                    for (k, v) in &rows {
                        assert!(*k >= key && *k <= to, "scan row {k} outside [{key}, {to}]");
                        if let Some(p) = prev {
                            assert!(p < *k, "scan rows out of order: {p} then {k}");
                        }
                        prev = Some(*k);
                        if *k < KEYS {
                            let version = decode(*k, v);
                            let max_ok = published[*k as usize].load(Ordering::Acquire) + 1;
                            assert!(version <= max_ok, "scan saw impossible version");
                        }
                        observed += 1;
                    }
                }
                (observed, calls)
            }));
        }
        // Updaters bound the run; then release the open-ended threads.
        // (Scope join order: wait for updaters by joining nothing —
        // the two updater spawns finish on their own; then signal.)
        // Explicitly: spawn a watchdog that flips `stop` when updaters
        // are done is overkill — instead, updaters were spawned first and
        // we detect completion by polling published[].
        let engine2 = engine.clone();
        let published2 = published.clone();
        let stop2 = stop.clone();
        scope.spawn(move || {
            loop {
                let done =
                    (0..KEYS as usize).all(|k| published2[k].load(Ordering::Acquire) == ROUNDS);
                if done {
                    break;
                }
                std::thread::yield_now();
            }
            stop2.store(true, Ordering::Relaxed);
            let _ = &engine2;
        });
        let mut reader_calls = 0u64;
        for h in readers {
            let (observed, calls) = h.join().unwrap();
            assert!(observed > 0, "reader made no observations");
            reader_calls += calls;
        }
        reader_calls
    });

    engine.tc().locks().assert_no_leaks();
    let stats = engine.stats();
    // Both halves of the protocol must have carried real traffic in this
    // deliberately cache-thrashing setup: the latch-free path validated
    // reads, and cold/contended reads fell back — **boundedly**: each
    // read/scan call increments the fallback counter at most once (the
    // OLC attempt budget is fixed), so fallbacks can never exceed the
    // calls the readers issued. A retry storm — the counter outrunning
    // the call count — is exactly what this catches.
    let optimistic = stats.optimistic_point_reads + stats.optimistic_range_scans;
    assert!(optimistic > 0, "no read was ever served latch-free");
    assert!(stats.read_fallbacks > 0, "churn never forced a fallback — pool too big?");
    assert!(
        stats.read_fallbacks <= reader_calls,
        "fallback counter ({}) outran the {} read/scan calls issued",
        stats.read_fallbacks,
        reader_calls
    );

    // Final state: every key readable at its terminal version.
    for key in 0..KEYS {
        let v = engine.read(DEFAULT_TABLE, key).unwrap().expect("key survives churn");
        assert_eq!(decode(key, &v), ROUNDS);
    }
}

/// The read-mostly concurrent preset drives the same engine API the
/// `readpath` bench measures; with optimistic reads on (the default) the
/// run must both commit everything and serve reads latch-free.
#[test]
fn read_mostly_preset_serves_reads_optimistically() {
    let engine = Engine::build(EngineConfig {
        initial_rows: 2_000,
        pool_pages: 512,
        io_model: lr_common::IoModel::zero(),
        ..EngineConfig::default()
    })
    .unwrap()
    .into_shared();
    // Warm the cache so the descent validates instead of missing.
    let warm = engine.scan_range(DEFAULT_TABLE, 0, u64::MAX).unwrap();
    assert_eq!(warm.len(), 2_000);

    let scenario = ConcurrentScenario::read_mostly(4, 50, 2_000);
    let report = run_concurrent(&engine, &scenario).unwrap();
    assert_eq!(report.committed, 200);
    engine.tc().locks().assert_no_leaks();

    let stats = engine.stats();
    assert!(
        stats.optimistic_point_reads > 0,
        "read-mostly preset never hit the optimistic path: {stats:?}"
    );
}

/// A/B switch: with `optimistic_reads` off the engine must never touch
/// the optimistic machinery (the latched path is the baseline the
/// `readpath` gate compares against).
#[test]
fn disabled_optimistic_reads_never_engage() {
    let engine = Engine::build(EngineConfig {
        initial_rows: 500,
        pool_pages: 256,
        optimistic_reads: false,
        io_model: lr_common::IoModel::zero(),
        ..EngineConfig::default()
    })
    .unwrap()
    .into_shared();
    for key in [0u64, 100, 499] {
        assert!(engine.read(DEFAULT_TABLE, key).unwrap().is_some());
    }
    let _ = engine.scan_range(DEFAULT_TABLE, 0, 50).unwrap();
    let stats = engine.stats();
    assert_eq!(stats.optimistic_point_reads, 0);
    assert_eq!(stats.optimistic_range_scans, 0);
    assert_eq!(stats.read_fallbacks, 0, "nothing to fall back from");
}

/// Crash + recovery equivalence guard for the read path: the optimistic
/// descent must never surface state recovery would not — reads after
/// crash/recover agree between an optimistic-reads engine and a latched
/// one over the same history.
#[test]
fn optimistic_reads_agree_with_latched_after_recovery() {
    let run = |optimistic: bool| {
        let engine = Engine::build(EngineConfig {
            initial_rows: 1_000,
            pool_pages: 128,
            optimistic_reads: optimistic,
            io_model: lr_common::IoModel::zero(),
            ..EngineConfig::default()
        })
        .unwrap()
        .into_shared();
        // One stream: with concurrent streams the final value of a
        // contended key depends on commit interleaving, which would
        // compare scheduling, not the read path.
        let scenario = ConcurrentScenario::read_mostly(1, 160, 1_000);
        run_concurrent(&engine, &scenario).unwrap();
        engine.crash();
        engine.recover(lr_core::RecoveryMethod::Log1).unwrap();
        engine.scan_table(DEFAULT_TABLE).unwrap()
    };
    assert_eq!(run(true), run(false), "read path leaked into recovered state");
}
