//! Concurrent sessions end-to-end: K threads × M bank-transfer
//! transactions over shared keys, with no-wait conflict retry.
//!
//! Checks the acceptance properties of the session-based engine:
//!
//! * the **bank invariant** — the total balance is conserved through
//!   arbitrary interleavings of transfers;
//! * **zero leaked locks** after every transaction completed;
//! * **crash + recover** after the concurrent run restores a consistent
//!   state (same total, structurally valid tree), for both a logical and a
//!   physiological method over the same log;
//! * aborted transfers roll back cleanly under concurrency.

use lr_core::{Engine, EngineConfig, RecoveryMethod, Session, DEFAULT_TABLE};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

const ACCOUNTS: u64 = 64;
const OPENING_BALANCE: u64 = 1_000;

fn balance_value(v: u64) -> Vec<u8> {
    v.to_le_bytes().to_vec()
}

fn parse_balance(v: &[u8]) -> u64 {
    u64::from_le_bytes(v[..8].try_into().expect("8-byte balance"))
}

/// Build a bank: `ACCOUNTS` rows, each holding `OPENING_BALANCE`.
fn build_bank() -> Arc<Engine> {
    let cfg = EngineConfig {
        initial_rows: 0,
        pool_pages: 64,
        io_model: lr_common::IoModel::zero(),
        ..EngineConfig::default()
    };
    let engine = Engine::build(cfg).unwrap().into_shared();
    let mut s = Engine::session(&engine);
    s.begin().unwrap();
    for k in 0..ACCOUNTS {
        s.insert(k, balance_value(OPENING_BALANCE)).unwrap();
    }
    s.commit().unwrap();
    engine
}

fn total_balance(engine: &Engine) -> u64 {
    engine.scan_table(DEFAULT_TABLE).unwrap().iter().map(|(_, v)| parse_balance(v)).sum()
}

/// One transfer: move `amount` from `from` to `to`, locking both balances
/// before computing the new values.
fn transfer(s: &mut Session, from: u64, to: u64, amount: u64) -> lr_common::Result<()> {
    let from_bal = parse_balance(&s.read_for_update(DEFAULT_TABLE, from)?.expect("account"));
    let to_bal = parse_balance(&s.read_for_update(DEFAULT_TABLE, to)?.expect("account"));
    let moved = amount.min(from_bal);
    s.update(from, balance_value(from_bal - moved))?;
    s.update(to, balance_value(to_bal + moved))
}

#[test]
fn bank_invariant_under_concurrent_transfers() {
    let engine = build_bank();
    let threads = 8u64;
    let transfers_per_thread = 150u64;

    std::thread::scope(|scope| {
        for t in 0..threads {
            let mut session = Engine::session(&engine);
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(0xBA2E + t);
                for _ in 0..transfers_per_thread {
                    let from = rng.gen_range(0..ACCOUNTS);
                    let to = (from + rng.gen_range(1..ACCOUNTS)) % ACCOUNTS;
                    let amount = rng.gen_range(0..=100u64);
                    session
                        .run_txn(100_000, |s| transfer(s, from, to, amount))
                        .expect("transfer commits after retries");
                }
            });
        }
    });

    // Every transaction completed: no lock survives.
    engine.tc().locks().assert_no_leaks();
    assert_eq!(engine.tc().stats().commits, 1 + threads * transfers_per_thread);

    // The invariant: money moved, never created or destroyed.
    assert_eq!(total_balance(&engine), ACCOUNTS * OPENING_BALANCE);
}

#[test]
fn crash_and_recover_after_concurrent_run_is_consistent() {
    let engine = build_bank();
    let threads = 4u64;

    std::thread::scope(|scope| {
        for t in 0..threads {
            let mut session = Engine::session(&engine);
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(0xC0FFEE + t);
                for i in 0..80u64 {
                    let from = rng.gen_range(0..ACCOUNTS);
                    let to = (from + 1 + (i % (ACCOUNTS - 1))) % ACCOUNTS;
                    session
                        .run_txn(100_000, |s| transfer(s, from, to, 25))
                        .expect("transfer commits after retries");
                }
            });
        }
    });
    // A checkpoint mid-history exercises the bCkpt→RSSP→eCkpt bracket over
    // the concurrent log.
    engine.checkpoint().unwrap();

    // Crash, then recover the same log twice (forked): once logically,
    // once physiologically. Both must restore the conserved total.
    engine.crash();
    let logical = engine.fork_crashed().unwrap();
    logical.recover(RecoveryMethod::Log1).unwrap();
    assert_eq!(total_balance(&logical), ACCOUNTS * OPENING_BALANCE);
    logical.verify_table(DEFAULT_TABLE).unwrap();

    let physio = engine.fork_crashed().unwrap();
    physio.recover(RecoveryMethod::Sql1).unwrap();
    assert_eq!(total_balance(&physio), ACCOUNTS * OPENING_BALANCE);

    engine.recover(RecoveryMethod::Log2).unwrap();
    assert_eq!(total_balance(&engine), ACCOUNTS * OPENING_BALANCE);
    engine.tc().locks().assert_no_leaks();
}

#[test]
fn in_flight_transactions_at_crash_are_losers() {
    let engine = build_bank();

    // Park an uncommitted transfer on one session while others commit.
    let mut parked = Engine::session(&engine);
    parked.begin().unwrap();
    let b0 = parse_balance(&parked.read_for_update(DEFAULT_TABLE, 0).unwrap().unwrap());
    parked.update(0, balance_value(b0 - 500)).unwrap();

    std::thread::scope(|scope| {
        for t in 0..3u64 {
            let mut session = Engine::session(&engine);
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(t);
                for _ in 0..40 {
                    // Accounts 1.. only: account 0 is locked by the parked
                    // transaction, so these never block on it.
                    let from = rng.gen_range(1..ACCOUNTS);
                    let to = 1 + (from % (ACCOUNTS - 1));
                    session
                        .run_txn(100_000, |s| transfer(s, from, to, 10))
                        .expect("transfer commits");
                }
            });
        }
    });

    // Crash with the parked transfer still open: it must be undone.
    engine.crash();
    engine.recover(RecoveryMethod::Log1).unwrap();
    assert_eq!(total_balance(&engine), ACCOUNTS * OPENING_BALANCE);
    assert_eq!(
        parse_balance(&engine.read(DEFAULT_TABLE, 0).unwrap().unwrap()),
        OPENING_BALANCE,
        "uncommitted debit rolled back"
    );
    // The parked session's handle is now stale; dropping it must not
    // disturb the recovered engine (its abort-on-drop sees fresh state).
    drop(parked);
    engine.tc().locks().assert_no_leaks();
}

#[test]
fn concurrent_aborts_roll_back_cleanly() {
    let engine = build_bank();
    let threads = 4u64;

    std::thread::scope(|scope| {
        for t in 0..threads {
            let mut session = Engine::session(&engine);
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(77 + t);
                for i in 0..60u64 {
                    let from = rng.gen_range(0..ACCOUNTS);
                    let to = (from + 7) % ACCOUNTS;
                    if i % 3 == 0 {
                        // Do the transfer, then change our mind.
                        loop {
                            session.begin().unwrap();
                            match transfer(&mut session, from, to, 50) {
                                Ok(()) => {
                                    session.abort().unwrap();
                                    break;
                                }
                                Err(lr_common::Error::LockConflict { .. }) => {
                                    session.abort().unwrap();
                                    std::thread::yield_now();
                                }
                                Err(e) => panic!("unexpected error: {e:?}"),
                            }
                        }
                    } else {
                        session
                            .run_txn(100_000, |s| transfer(s, from, to, 50))
                            .expect("transfer commits");
                    }
                }
            });
        }
    });

    engine.tc().locks().assert_no_leaks();
    assert_eq!(total_balance(&engine), ACCOUNTS * OPENING_BALANCE);
    let stats = engine.tc().stats();
    assert!(stats.aborts > 0, "abort paths exercised: {stats:?}");
}
