//! The classic recovery invariant: money is conserved.
//!
//! Accounts hold balances; transactions transfer random amounts between
//! random accounts (two updates — the canonical atomicity test). No matter
//! where we crash and which method recovers, the sum of all balances must
//! equal the initial total: a torn transfer (debit applied, credit not)
//! would break conservation, as would a lost committed transfer.

use lr_common::{IoModel, Key};
use lr_core::{Engine, EngineConfig, RecoveryMethod, DEFAULT_TABLE};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const ACCOUNTS: u64 = 500;
const INITIAL_BALANCE: u64 = 1_000;

fn balance_value(amount: u64) -> Vec<u8> {
    amount.to_le_bytes().to_vec()
}

fn read_balance(e: &mut Engine, k: Key) -> u64 {
    let v = e.read(DEFAULT_TABLE, k).unwrap().expect("account exists");
    u64::from_le_bytes(v[..8].try_into().unwrap())
}

fn total_balance(e: &mut Engine) -> u64 {
    (0..ACCOUNTS).map(|k| read_balance(e, k)).sum()
}

fn bank_engine() -> Engine {
    // Build with exactly ACCOUNTS rows of 8-byte balances.
    let cfg = EngineConfig {
        initial_rows: 0, // we load accounts ourselves
        pool_pages: 32,
        io_model: IoModel::zero(),
        row_value_size: 8,
        // The method rotation includes the ablations, which need their
        // extra log content captured during normal execution.
        aries_ckpt_capture: true,
        perfect_delta_lsns: true,
        ..EngineConfig::default()
    };
    let e = Engine::build(cfg).unwrap();
    let t = e.begin().unwrap();
    for k in 0..ACCOUNTS {
        e.insert(t, k, balance_value(INITIAL_BALANCE)).unwrap();
    }
    e.commit(t).unwrap();
    e.checkpoint().unwrap();
    e
}

/// One transfer transaction; returns Ok(amount) if committed.
fn transfer(e: &mut Engine, rng: &mut StdRng) -> u64 {
    let from = rng.gen_range(0..ACCOUNTS);
    let to = (from + rng.gen_range(1..ACCOUNTS)) % ACCOUNTS;
    let t = e.begin().unwrap();
    let from_bal = read_balance(e, from);
    let amount = rng.gen_range(0..=from_bal.min(100));
    let to_bal = read_balance(e, to);
    e.update(t, from, balance_value(from_bal - amount)).unwrap();
    e.update(t, to, balance_value(to_bal + amount)).unwrap();
    e.commit(t).unwrap();
    amount
}

#[test]
fn money_is_conserved_across_crashes() {
    let mut e = bank_engine();
    let mut rng = StdRng::seed_from_u64(88);
    assert_eq!(total_balance(&mut e), ACCOUNTS * INITIAL_BALANCE);

    for (cycle, method) in RecoveryMethod::all().iter().enumerate() {
        for _ in 0..rng.gen_range(20..80) {
            transfer(&mut e, &mut rng);
        }
        if rng.gen_bool(0.4) {
            e.checkpoint().unwrap();
        }
        // Sometimes crash with a transfer half-done (debit applied,
        // credit not, no commit) — the dangerous state.
        if rng.gen_bool(0.6) {
            let from = rng.gen_range(0..ACCOUNTS);
            let t = e.begin().unwrap();
            let bal = read_balance(&mut e, from);
            e.update(t, from, balance_value(bal.saturating_sub(50))).unwrap();
            // no credit, no commit
        }
        e.crash();
        e.recover(*method).unwrap_or_else(|err| panic!("cycle {cycle} ({method}): {err}"));
        assert_eq!(
            total_balance(&mut e),
            ACCOUNTS * INITIAL_BALANCE,
            "cycle {cycle} ({method}): money created or destroyed!"
        );
    }
}

#[test]
fn torn_tail_cannot_tear_a_transfer() {
    let mut e = bank_engine();
    let mut rng = StdRng::seed_from_u64(99);
    for _ in 0..30 {
        transfer(&mut e, &mut rng);
    }
    // Tear random amounts off the log tail; conservation must hold: either
    // a whole transfer survives (its commit record is intact) or none of
    // its effects do.
    for torn in [1u64, 17, 64, 300, 1_000] {
        let mut forked = {
            // Crash the live engine once, fork per torn size.
            if !e.is_crashed() {
                e.crash();
            }
            e.fork_crashed().unwrap()
        };
        forked.wal().lock().tear(torn);
        forked.recover(RecoveryMethod::Log1).unwrap();
        assert_eq!(
            total_balance(&mut forked),
            ACCOUNTS * INITIAL_BALANCE,
            "torn {torn} bytes: conservation violated"
        );
    }
}
