//! The `DcApi` contract, proven across backends: the B-tree DC, the
//! hash-index DC, the log-structured DC (the WAL is the store), and
//! their `remote:*` proxies (the same components behind the message
//! boundary — every call crossing the wire codec through a `DcServer`
//! over a loopback transport) must expose **identical committed state**
//! after any crash, for every recovery method — the Deuteronomy claim
//! that the TC neither knows nor cares how, or *where*, the DC places
//! data.
//!
//! The suites riding the same harness:
//!
//! * the recovery-equivalence matrix — one seeded workload per backend,
//!   one crash, all nine methods recovered on independent forks; every
//!   method must agree within a backend, and all backends must agree
//!   with each other (and with the committed-state oracle);
//! * the remote worker matrix — the proxied backends recover all nine
//!   methods at 1/2/4 redo workers, all agreeing;
//! * the bank invariant — concurrent sessions transferring money, crash
//!   with a transfer in flight, recover: conservation holds on every
//!   backend, including through the proxy;
//! * the transport-drop probe — a prepare parked server-side when the
//!   connection dies must surface a clean error and release its token,
//!   never a wedged latch.

use lr_common::IoModel;
use lr_core::config::deterministic_value;
use lr_core::{
    Engine, EngineConfig, RecoveryMethod, RecoveryOptions, Session, ShadowDb, DEFAULT_TABLE,
};
use std::sync::Arc;

const BACKENDS: [&str; 6] = ["btree", "hash", "log", "remote:btree", "remote:hash", "remote:log"];
const REMOTE_BACKENDS: [&str; 3] = ["remote:btree", "remote:hash", "remote:log"];

fn config_for(backend: &str) -> EngineConfig {
    EngineConfig {
        initial_rows: 1_500,
        pool_pages: 48,
        io_model: IoModel::zero(),
        dirty_batch_cap: 24,
        flush_batch_cap: 24,
        // Capture everything any method could need on one log.
        aries_ckpt_capture: true,
        perfect_delta_lsns: true,
        backend: backend.to_string(),
        ..EngineConfig::default()
    }
}

/// A deterministic single-stream workload touching every operation kind:
/// updates over the loaded rows, fresh inserts, deletes of both loaded
/// and inserted keys, checkpoints between phases, and one in-flight loser
/// left open at the crash.
fn run_workload(engine: &Engine, shadow: &mut ShadowDb) {
    let rows = engine.config().initial_rows;
    let vsize = engine.config().row_value_size;
    for phase in 0..3u64 {
        for i in 0..120u64 {
            let t = engine.begin().unwrap();
            let k1 = (i * 13 + phase * 7) % rows;
            let v1 = deterministic_value(k1, phase + 1, vsize);
            // A prior phase may have deleted this key: re-insert then.
            if engine.read(DEFAULT_TABLE, k1).unwrap().is_some() {
                engine.update(t, k1, v1.clone()).unwrap();
            } else {
                engine.insert(t, k1, v1.clone()).unwrap();
            }
            shadow.stage_put(t, DEFAULT_TABLE, k1, v1);
            if i % 5 == 0 {
                let nk = rows + phase * 200 + i;
                let nv = deterministic_value(nk, 0, vsize);
                engine.insert(t, nk, nv.clone()).unwrap();
                shadow.stage_put(t, DEFAULT_TABLE, nk, nv);
            }
            if i % 11 == 0 {
                let dk = (i * 3 + phase * 101) % rows;
                // Only delete keys still present (an earlier phase may
                // have deleted it already).
                if engine.read(DEFAULT_TABLE, dk).unwrap().is_some() {
                    engine.delete(t, dk).unwrap();
                    shadow.stage_delete(t, DEFAULT_TABLE, dk);
                }
            }
            engine.commit(t).unwrap();
            shadow.commit(t);
        }
        engine.checkpoint().unwrap();
    }
    // One loser in flight: recovery undo must erase it on every backend.
    let loser = engine.begin().unwrap();
    engine.update(loser, 1, b"loser-update".to_vec()).unwrap();
    engine.insert(loser, 999_999, b"loser-insert".to_vec()).unwrap();
    // no commit — the crash orphans it
}

#[test]
fn all_methods_agree_within_and_across_backends() {
    let mut per_backend: Vec<Vec<(u64, Vec<u8>)>> = Vec::new();
    for backend in BACKENDS {
        let cfg = config_for(backend);
        let mut shadow = ShadowDb::with_initial_rows(&cfg);
        let engine = Engine::build(cfg).unwrap();
        run_workload(&engine, &mut shadow);
        engine.crash();
        shadow.crash();

        let mut reference: Option<Vec<(u64, Vec<u8>)>> = None;
        for method in RecoveryMethod::all() {
            let fork = engine.fork_crashed().unwrap();
            let report = fork
                .recover(method)
                .unwrap_or_else(|e| panic!("{backend}/{method}: recovery failed: {e}"));
            assert_eq!(report.breakdown.losers_undone, 1, "{backend}/{method}: loser count");
            shadow.verify_against(&fork).unwrap_or_else(|e| {
                panic!("{backend}/{method}: diverged from committed oracle: {e}")
            });
            fork.verify_table(DEFAULT_TABLE)
                .unwrap_or_else(|e| panic!("{backend}/{method}: structure check failed: {e}"));
            let state = fork.scan_table(DEFAULT_TABLE).unwrap();
            match &reference {
                None => reference = Some(state),
                Some(r) => assert_eq!(
                    &state, r,
                    "{backend}/{method}: state diverged from this backend's reference"
                ),
            }
        }
        per_backend.push(reference.unwrap());
    }
    for (backend, state) in BACKENDS.iter().zip(&per_backend).skip(1) {
        assert_eq!(
            state, &per_backend[0],
            "{backend} recovered different committed state than {}",
            BACKENDS[0]
        );
    }
}

#[test]
fn remote_backends_recover_every_method_at_every_worker_count() {
    // The proxied components must not just match in-process recovery at
    // the default settings: all nine methods × 1/2/4 redo workers run
    // against forks of one crash image per remote backend, and every
    // combination must land on the same committed state (and the oracle).
    for backend in REMOTE_BACKENDS {
        let cfg = config_for(backend);
        let mut shadow = ShadowDb::with_initial_rows(&cfg);
        let engine = Engine::build(cfg).unwrap();
        run_workload(&engine, &mut shadow);
        engine.crash();
        shadow.crash();

        let mut reference: Option<Vec<(u64, Vec<u8>)>> = None;
        for method in RecoveryMethod::all() {
            for workers in [1, 2, 4] {
                let fork = engine.fork_crashed().unwrap();
                fork.recover_with(method, RecoveryOptions::with_workers(workers))
                    .unwrap_or_else(|e| panic!("{backend}/{method}/w{workers}: {e}"));
                shadow.verify_against(&fork).unwrap_or_else(|e| {
                    panic!("{backend}/{method}/w{workers}: diverged from oracle: {e}")
                });
                let state = fork.scan_table(DEFAULT_TABLE).unwrap();
                match &reference {
                    None => reference = Some(state),
                    Some(r) => assert_eq!(
                        &state, r,
                        "{backend}/{method}/w{workers}: state diverged from reference"
                    ),
                }
            }
        }
    }
}

#[test]
fn tcp_backend_recovers_every_method_and_matches_in_process() {
    // The `tcp:*` backends run the same DcServer behind a real loopback
    // socket instead of the in-process loopback transport. The same
    // workload, crash, and all nine recovery methods must land on the
    // same committed state the in-process B-tree lands on — every
    // recovery call crossing the kernel's TCP stack.
    let mut states: Vec<Vec<(u64, Vec<u8>)>> = Vec::new();
    for backend in ["btree", "tcp:btree"] {
        let cfg = config_for(backend);
        let mut shadow = ShadowDb::with_initial_rows(&cfg);
        let engine = Engine::build(cfg).unwrap();
        run_workload(&engine, &mut shadow);
        engine.crash();
        shadow.crash();

        let mut reference: Option<Vec<(u64, Vec<u8>)>> = None;
        for method in RecoveryMethod::all() {
            let fork = engine.fork_crashed().unwrap();
            fork.recover(method).unwrap_or_else(|e| panic!("{backend}/{method}: {e}"));
            shadow
                .verify_against(&fork)
                .unwrap_or_else(|e| panic!("{backend}/{method}: diverged from oracle: {e}"));
            let state = fork.scan_table(DEFAULT_TABLE).unwrap();
            match &reference {
                None => reference = Some(state),
                Some(r) => {
                    assert_eq!(&state, r, "{backend}/{method}: diverged from reference")
                }
            }
        }
        states.push(reference.unwrap());
    }
    assert_eq!(states[1], states[0], "tcp:btree recovered different state than btree");
}

#[test]
fn tcp_registry_names_resolve_for_every_inner_backend() {
    for backend in ["tcp:btree", "tcp:hash", "tcp:log"] {
        let cfg = EngineConfig {
            initial_rows: 10,
            pool_pages: 16,
            io_model: IoModel::zero(),
            backend: backend.to_string(),
            ..EngineConfig::default()
        };
        let engine = Engine::build(cfg).unwrap();
        assert_eq!(engine.dc().backend_name(), backend);
        // A write round-trips through the socket-backed component.
        let t = engine.begin().unwrap();
        engine.update(t, 3, b"over-tcp".to_vec()).unwrap();
        engine.commit(t).unwrap();
        assert_eq!(engine.read(DEFAULT_TABLE, 3).unwrap().unwrap(), b"over-tcp");
    }
}

#[test]
fn parallel_recovery_matches_serial_on_the_hash_backend() {
    // The partitioned redo pipeline routes by resolved PID; the hash
    // backend resolves page-logically (logged PID), which must partition
    // just as soundly as the B-tree's traversal-resolved PIDs.
    let cfg = config_for("hash");
    let mut shadow = ShadowDb::with_initial_rows(&cfg);
    let engine = Engine::build(cfg).unwrap();
    run_workload(&engine, &mut shadow);
    engine.crash();
    shadow.crash();

    for method in [RecoveryMethod::Log1, RecoveryMethod::Sql2] {
        let serial = engine.fork_crashed().unwrap();
        let parallel = engine.fork_crashed().unwrap();
        serial.recover_with(method, RecoveryOptions::with_workers(1)).unwrap();
        parallel.recover_with(method, RecoveryOptions::with_workers(4)).unwrap();
        shadow.verify_against(&serial).unwrap();
        assert_eq!(
            serial.scan_table(DEFAULT_TABLE).unwrap(),
            parallel.scan_table(DEFAULT_TABLE).unwrap(),
            "hash/{method}: workers=4 diverged from serial"
        );
        parallel.verify_table(DEFAULT_TABLE).unwrap();
    }
}

// ---------------------------------------------------------------------
// bank invariant, both backends
// ---------------------------------------------------------------------

const ACCOUNTS: u64 = 300;
const INITIAL_BALANCE: u64 = 1_000;

fn read_balance(e: &Engine, k: u64) -> u64 {
    let v = e.read(DEFAULT_TABLE, k).unwrap().expect("account exists");
    u64::from_le_bytes(v[..8].try_into().unwrap())
}

fn total_balance(e: &Engine) -> u64 {
    (0..ACCOUNTS).map(|k| read_balance(e, k)).sum()
}

#[test]
fn concurrent_bank_conserves_money_on_both_backends() {
    for backend in BACKENDS {
        let cfg = EngineConfig {
            initial_rows: 0, // accounts loaded below
            pool_pages: 32,
            row_value_size: 8,
            io_model: IoModel::zero(),
            aries_ckpt_capture: true,
            perfect_delta_lsns: true,
            backend: backend.to_string(),
            ..EngineConfig::default()
        };
        let engine = Engine::build(cfg).unwrap().into_shared();
        {
            let t = engine.begin().unwrap();
            for k in 0..ACCOUNTS {
                engine.insert(t, k, INITIAL_BALANCE.to_le_bytes().to_vec()).unwrap();
            }
            engine.commit(t).unwrap();
            engine.checkpoint().unwrap();
        }

        // 4 sessions × 50 transfers under no-wait retry.
        std::thread::scope(|s| {
            for th in 0..4u64 {
                let mut session: Session = Engine::session(&engine);
                s.spawn(move || {
                    for i in 0..50u64 {
                        let from = (th * 37 + i * 13) % ACCOUNTS;
                        let to = (from + 1 + (i * 7) % (ACCOUNTS - 1)) % ACCOUNTS;
                        session
                            .run_txn(1_000, |s| {
                                let fv = s.read_for_update(DEFAULT_TABLE, from)?.unwrap();
                                let tv = s.read_for_update(DEFAULT_TABLE, to)?.unwrap();
                                let fb = u64::from_le_bytes(fv[..8].try_into().unwrap());
                                let tb = u64::from_le_bytes(tv[..8].try_into().unwrap());
                                let amt = (i % 50).min(fb);
                                s.update_in(
                                    DEFAULT_TABLE,
                                    from,
                                    (fb - amt).to_le_bytes().to_vec(),
                                )?;
                                s.update_in(DEFAULT_TABLE, to, (tb + amt).to_le_bytes().to_vec())
                            })
                            .unwrap();
                    }
                });
            }
        });
        engine.tc().locks().assert_no_leaks();
        assert_eq!(total_balance(&engine), ACCOUNTS * INITIAL_BALANCE, "{backend}: pre-crash");

        // Crash mid-transfer (debit applied, credit not, no commit).
        let t = engine.begin().unwrap();
        let bal = read_balance(&engine, 17);
        engine.update(t, 17, (bal.saturating_sub(100)).to_le_bytes().to_vec()).unwrap();
        engine.crash();

        // Every method conserves, on forks of the same crash image.
        for method in [RecoveryMethod::Log0, RecoveryMethod::Log2, RecoveryMethod::Sql2] {
            let fork: Arc<Engine> = Arc::new(engine.fork_crashed().unwrap());
            fork.recover(method).unwrap_or_else(|e| panic!("{backend}/{method}: {e}"));
            assert_eq!(
                total_balance(&fork),
                ACCOUNTS * INITIAL_BALANCE,
                "{backend}/{method}: money created or destroyed"
            );
            fork.verify_table(DEFAULT_TABLE).unwrap();
        }
    }
}

// ---------------------------------------------------------------------
// background compaction racing live writers (log backend)
// ---------------------------------------------------------------------

#[test]
fn compactor_races_writers_without_losing_updates_on_the_log_backend() {
    const ROUNDS: u64 = 30;
    let cfg = EngineConfig {
        initial_rows: 200,
        pool_pages: 48,
        row_value_size: 64,
        io_model: IoModel::zero(),
        backend: "log".to_string(),
        background_maintenance: true,
        maint_tick_ms: 1,
        // Small segments + a low watermark so update churn trips the
        // compactor repeatedly while the writers are still running.
        log_segment_bytes: 8 << 10,
        garbage_watermark: 0.3,
        ..EngineConfig::default()
    };
    let rows = cfg.initial_rows;
    let vsize = cfg.row_value_size;
    let engine = Engine::build(cfg).unwrap().into_shared();
    assert!(engine.maintenance_running());

    // 4 writers over disjoint key ranges: every key's final version is
    // ROUNDS, so a single stale read-back proves a lost update.
    std::thread::scope(|s| {
        for th in 0..4u64 {
            let mut session: Session = Engine::session(&engine);
            s.spawn(move || {
                for round in 1..=ROUNDS {
                    for i in 0..50u64 {
                        let k = (th * 50 + i) % rows;
                        let v = deterministic_value(k, round, vsize);
                        session
                            .run_txn(1_000, |s| s.update_in(DEFAULT_TABLE, k, v.clone()))
                            .unwrap();
                    }
                }
            });
        }
    });

    // The churn left far more dead than live bytes in the cold log; give
    // the background compactor a moment to notice if it has not already.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while engine.dc().stats().segments_compacted == 0 {
        assert!(std::time::Instant::now() < deadline, "compactor never reclaimed a segment");
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    let dc_stats = engine.dc().stats();
    assert!(dc_stats.segments_compacted > 0, "segments_compacted must be nonzero under churn");
    assert!(dc_stats.live_bytes_migrated > 0, "live_bytes_migrated must be nonzero under churn");
    assert!(dc_stats.dead_bytes_reclaimed > 0, "dead_bytes_reclaimed must be nonzero under churn");

    // No lost updates: every key reads back its final round's value.
    for k in 0..rows {
        let got = engine.read(DEFAULT_TABLE, k).unwrap().expect("key survived the churn");
        assert_eq!(got, deterministic_value(k, ROUNDS, vsize), "key {k}: lost update");
    }
    engine.verify_table(DEFAULT_TABLE).unwrap();
}

#[test]
fn engine_reports_its_backend() {
    for backend in BACKENDS {
        let cfg = EngineConfig {
            initial_rows: 10,
            pool_pages: 16,
            io_model: IoModel::zero(),
            backend: backend.to_string(),
            ..EngineConfig::default()
        };
        let engine = Engine::build(cfg).unwrap();
        assert_eq!(engine.dc().backend_name(), backend);
    }
    assert!(
        Engine::build(EngineConfig { backend: "lsm".into(), ..EngineConfig::default() }).is_err(),
        "unknown backend names must be rejected at build time"
    );
}

// ---------------------------------------------------------------------
// transport failure at the message boundary
// ---------------------------------------------------------------------

#[test]
fn remote_transport_drop_mid_prepare_is_a_clean_error_not_a_wedged_token() {
    use lr_common::{Error, Lsn, SimClock, TableId, TxnId};
    use lr_dc::{
        remote_loopback, DcApi, DcConfig, DcIntrospect, DcServer, WriteIntent, REMOTE_BTREE_BACKEND,
    };
    use lr_wal::{LogPayload, LogRecord, Wal};

    let table = TableId(1);
    // Build the inner component through the registry (backend-agnostic),
    // keeping our own handle so we can stand up a fresh server later.
    let reg = lr_dc::backend("btree").unwrap();
    let mut disk = lr_storage::SimDisk::new(512, 0, SimClock::new(), IoModel::zero());
    (reg.format)(&mut disk).unwrap();
    let wal = Wal::new_shared(4096);
    let inner = (reg.open)(Box::new(disk), wal, DcConfig::default()).unwrap();
    let (remote, transport) = remote_loopback(inner.clone(), REMOTE_BTREE_BACKEND);
    remote.create_table(table).unwrap();

    let insert = |key: u64| {
        let op = remote.prepare_op(table, key, WriteIntent::Insert { value_len: 8 })?;
        let payload = LogPayload::Insert {
            txn: TxnId(1),
            table,
            key,
            pid: op.pid,
            prev_lsn: Lsn::NULL,
            value: vec![key as u8; 8],
        };
        let lsn = remote.wal().append(&payload);
        remote.apply(&LogRecord { lsn, payload })
    };
    insert(1).unwrap();

    // Park a prepare server-side (the proxy holds its token), then drop
    // the connection underneath it.
    let parked = remote.prepare_op(table, 2, WriteIntent::Insert { value_len: 8 }).unwrap();
    transport.disconnect();
    assert!(!transport.is_connected());

    // In-flight traffic fails with a clean, typed transport error — no
    // panic, no hang.
    match remote.read(table, 1) {
        Err(Error::Io(e)) => assert_eq!(e.kind(), std::io::ErrorKind::BrokenPipe),
        other => panic!("expected a broken-pipe error, got {other:?}"),
    }
    // Releasing the proxy guard over the dead transport is harmless: the
    // disconnect already released every server-side token.
    drop(parked);

    // Reconnect against a fresh server over the same component. If the
    // parked token had wedged its page latch, this prepare would hang or
    // conflict; instead the key is freely writable.
    transport.reconnect(Arc::new(DcServer::new(inner)));
    insert(2).unwrap();
    assert_eq!(remote.read(table, 1).unwrap().unwrap(), vec![1u8; 8]);
    assert_eq!(remote.read(table, 2).unwrap().unwrap(), vec![2u8; 8]);
}
