//! Background maintenance service + clock eviction, end to end: a
//! larger-than-cache concurrent workload with the checkpointer and
//! lazywriter threads running.
//!
//! Acceptance properties (ISSUE 2):
//!
//! * with the service enabled, a sustained multi-thread write workload
//!   keeps the runtime DPT bounded — the dirty fraction returns to the
//!   watermark — with **zero foreground-thread checkpoints**;
//! * eviction cost is independent of pool size (clock examinations stay a
//!   small constant per eviction even when the working set is a multiple
//!   of the cache);
//! * the bank invariant holds through the run, and post-crash recovery is
//!   equivalent across a logical and a physiological method over the same
//!   log.

use lr_core::{Engine, EngineConfig, RecoveryMethod, Session, DEFAULT_TABLE};
use lr_workload::{run_concurrent, spill_concurrent};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Accounts spread over ~4 KiB pages with 100-byte rows: ~128 data pages
/// against a 48-frame pool — the working set is ~2.7× the cache.
const ACCOUNTS: u64 = 4_096;
const OPENING_BALANCE: u64 = 1_000;
const POOL_PAGES: usize = 48;
const BALANCE_LEN: usize = 100;

fn balance_value(v: u64) -> Vec<u8> {
    let mut bytes = vec![0u8; BALANCE_LEN];
    bytes[..8].copy_from_slice(&v.to_le_bytes());
    bytes
}

fn parse_balance(v: &[u8]) -> u64 {
    u64::from_le_bytes(v[..8].try_into().expect("8-byte balance prefix"))
}

fn build_bank() -> Arc<Engine> {
    let cfg = EngineConfig {
        initial_rows: 0,
        pool_pages: POOL_PAGES,
        io_model: lr_common::IoModel::zero(),
        background_maintenance: true,
        maint_tick_ms: 1,
        ckpt_interval_ms: 10,
        ckpt_log_bytes: 512 << 10,
        cleaner_batch: 16,
        ..EngineConfig::default()
    };
    let engine = Engine::build(cfg).unwrap().into_shared();
    let mut s = Engine::session(&engine);
    for chunk in (0..ACCOUNTS).collect::<Vec<_>>().chunks(256) {
        s.begin().unwrap();
        for &k in chunk {
            s.insert(k, balance_value(OPENING_BALANCE)).unwrap();
        }
        s.commit().unwrap();
    }
    engine
}

fn total_balance(engine: &Engine) -> u64 {
    engine.scan_table(DEFAULT_TABLE).unwrap().iter().map(|(_, v)| parse_balance(v)).sum()
}

fn transfer(s: &mut Session, from: u64, to: u64, amount: u64) -> lr_common::Result<()> {
    let from_bal = parse_balance(&s.read_for_update(DEFAULT_TABLE, from)?.expect("account"));
    let to_bal = parse_balance(&s.read_for_update(DEFAULT_TABLE, to)?.expect("account"));
    let moved = amount.min(from_bal);
    s.update(from, balance_value(from_bal - moved))?;
    s.update(to, balance_value(to_bal + moved))
}

/// Poll until `pred` holds or the deadline passes.
fn wait_for(mut pred: impl FnMut() -> bool, what: &str) {
    let deadline = Instant::now() + Duration::from_secs(15);
    while !pred() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(2));
    }
}

#[test]
fn larger_than_cache_bank_under_background_service() {
    let engine = build_bank();
    assert!(engine.maintenance_running(), "into_shared started the service");
    let threads = 4u64;
    let transfers_per_thread = 120u64;

    std::thread::scope(|scope| {
        for t in 0..threads {
            let mut session = Engine::session(&engine);
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(0x51EE9 + t);
                for _ in 0..transfers_per_thread {
                    // Uniform over the whole keyspace: the working set is
                    // the entire ~128-page table, far beyond 48 frames.
                    let from = rng.gen_range(0..ACCOUNTS);
                    let to = (from + rng.gen_range(1..ACCOUNTS)) % ACCOUNTS;
                    let amount = rng.gen_range(0..=100u64);
                    session
                        .run_txn(100_000, |s| transfer(s, from, to, amount))
                        .expect("transfer commits after retries");
                }
            });
        }
    });

    engine.tc().locks().assert_no_leaks();
    assert_eq!(total_balance(&engine), ACCOUNTS * OPENING_BALANCE, "bank invariant");

    // --- the dirty fraction settles back to the watermark ---
    let capacity = engine.dc().pool().capacity();
    let watermark = (engine.config().dirty_watermark * capacity as f64).ceil() as usize;
    wait_for(
        || engine.dc().pool().dirty_count() <= watermark,
        "lazywriter to sweep the dirty fraction under the watermark",
    );

    // --- maintenance did the maintaining: zero foreground checkpoints ---
    // Joined first: the checkpoints_taken / background_checkpoints pair is
    // incremented non-atomically, so equality holds only once the
    // checkpointer thread is quiescent.
    engine.stop_maintenance();
    let stats = engine.stats();
    assert!(stats.background_checkpoints >= 1, "checkpointer ran: {stats:?}");
    assert_eq!(
        stats.checkpoints_taken, stats.background_checkpoints,
        "every checkpoint came from the service, none from a session"
    );

    // --- eviction rode the clock hand, not a resident-set scan ---
    let pool = engine.dc().pool().stats();
    assert!(pool.evictions > 1_000, "larger-than-cache run must evict: {pool:?}");
    assert!(
        pool.clock_examinations <= 8 * pool.evictions + 2 * POOL_PAGES as u64,
        "sweep cost must stay O(1)/eviction: {} examinations for {} evictions",
        pool.clock_examinations,
        pool.evictions
    );

    // --- post-crash recovery equivalence over the same log ---
    engine.crash();
    let logical = engine.fork_crashed().unwrap();
    logical.recover(RecoveryMethod::Log1).unwrap();
    assert_eq!(total_balance(&logical), ACCOUNTS * OPENING_BALANCE);
    logical.verify_table(DEFAULT_TABLE).unwrap();

    let physio = engine.fork_crashed().unwrap();
    physio.recover(RecoveryMethod::Sql1).unwrap();
    assert_eq!(total_balance(&physio), ACCOUNTS * OPENING_BALANCE);

    engine.recover(RecoveryMethod::Log2).unwrap();
    assert_eq!(total_balance(&engine), ACCOUNTS * OPENING_BALANCE);
    engine.tc().locks().assert_no_leaks();
}

#[test]
fn spill_preset_commits_everything_and_recovers_equivalently() {
    let (cfg, scenario) = spill_concurrent(4, 60);
    let engine = Engine::build(cfg).unwrap().into_shared();
    let report = run_concurrent(&engine, &scenario).unwrap();
    assert_eq!(report.committed, 4 * 60);
    engine.tc().locks().assert_no_leaks();

    engine.stop_maintenance(); // quiesce the counter pair before comparing
    let stats = engine.stats();
    assert_eq!(
        stats.checkpoints_taken, stats.background_checkpoints,
        "the preset takes no foreground checkpoints"
    );
    assert!(engine.dc().pool().stats().evictions > 0, "spill preset must evict");

    // Identical state whether the log is replayed logically or
    // physiologically.
    engine.crash();
    let logical = engine.fork_crashed().unwrap();
    logical.recover(RecoveryMethod::Log1).unwrap();
    let physio = engine.fork_crashed().unwrap();
    physio.recover(RecoveryMethod::Sql1).unwrap();
    assert_eq!(
        logical.scan_table(DEFAULT_TABLE).unwrap(),
        physio.scan_table(DEFAULT_TABLE).unwrap(),
        "logical and physiological recovery disagree"
    );
    logical.verify_table(DEFAULT_TABLE).unwrap();
}
