//! Savepoints (ARIES partial rollback): undo a suffix of a transaction's
//! work, keep going, commit — and survive crashes at every stage.

use lr_common::IoModel;
use lr_core::{Engine, EngineConfig, RecoveryMethod, DEFAULT_TABLE};

fn engine() -> Engine {
    Engine::build(EngineConfig {
        initial_rows: 800,
        pool_pages: 32,
        io_model: IoModel::zero(),
        ..EngineConfig::default()
    })
    .unwrap()
}

#[test]
fn partial_rollback_undoes_only_the_suffix() {
    let e = engine();
    let t = e.begin().unwrap();
    e.update(t, 1, b"keep-me".to_vec()).unwrap();
    let sp = e.savepoint(t).unwrap();
    e.update(t, 2, b"undo-me".to_vec()).unwrap();
    e.insert(t, 9_000, b"undo-me-too".to_vec()).unwrap();
    let stats = e.rollback_to(t, sp).unwrap();
    assert_eq!(stats.ops_undone, 2);
    // Transaction still active; pre-savepoint work intact.
    e.update(t, 3, b"after-rollback".to_vec()).unwrap();
    e.commit(t).unwrap();

    assert_eq!(e.read(DEFAULT_TABLE, 1).unwrap().unwrap(), b"keep-me");
    assert_eq!(e.read(DEFAULT_TABLE, 2).unwrap().unwrap(), e.config().initial_value(2));
    assert_eq!(e.read(DEFAULT_TABLE, 9_000).unwrap(), None);
    assert_eq!(e.read(DEFAULT_TABLE, 3).unwrap().unwrap(), b"after-rollback");
}

#[test]
fn nested_savepoints_unwind_in_order() {
    let e = engine();
    let t = e.begin().unwrap();
    e.update(t, 10, b"v1".to_vec()).unwrap();
    let sp1 = e.savepoint(t).unwrap();
    e.update(t, 10, b"v2".to_vec()).unwrap();
    let sp2 = e.savepoint(t).unwrap();
    e.update(t, 10, b"v3".to_vec()).unwrap();

    e.rollback_to(t, sp2).unwrap();
    assert_eq!(e.read(DEFAULT_TABLE, 10).unwrap().unwrap(), b"v2");
    e.rollback_to(t, sp1).unwrap();
    assert_eq!(e.read(DEFAULT_TABLE, 10).unwrap().unwrap(), b"v1");
    e.commit(t).unwrap();
    assert_eq!(e.read(DEFAULT_TABLE, 10).unwrap().unwrap(), b"v1");
}

#[test]
fn abort_after_partial_rollback_undoes_everything() {
    let e = engine();
    let orig = e.read(DEFAULT_TABLE, 5).unwrap().unwrap();
    let t = e.begin().unwrap();
    e.update(t, 5, b"a".to_vec()).unwrap();
    let sp = e.savepoint(t).unwrap();
    e.update(t, 6, b"b".to_vec()).unwrap();
    e.rollback_to(t, sp).unwrap();
    e.update(t, 7, b"c".to_vec()).unwrap();
    e.abort(t).unwrap();
    assert_eq!(e.read(DEFAULT_TABLE, 5).unwrap().unwrap(), orig);
    assert_eq!(e.read(DEFAULT_TABLE, 6).unwrap().unwrap(), e.config().initial_value(6));
    assert_eq!(e.read(DEFAULT_TABLE, 7).unwrap().unwrap(), e.config().initial_value(7));
}

#[test]
fn crash_after_committed_partial_rollback_replays_clrs() {
    // The partial rollback's CLRs are redo-only: recovery must re-apply
    // them so the committed state reflects the rollback.
    let e = engine();
    let t = e.begin().unwrap();
    e.update(t, 1, b"keep".to_vec()).unwrap();
    let sp = e.savepoint(t).unwrap();
    e.update(t, 2, b"gone".to_vec()).unwrap();
    e.rollback_to(t, sp).unwrap();
    e.commit(t).unwrap();
    e.crash();
    for method in [RecoveryMethod::Log1, RecoveryMethod::Sql1] {
        let forked = e.fork_crashed().unwrap();
        forked.recover(method).unwrap();
        assert_eq!(forked.read(DEFAULT_TABLE, 1).unwrap().unwrap(), b"keep", "{method}");
        assert_eq!(
            forked.read(DEFAULT_TABLE, 2).unwrap().unwrap(),
            forked.config().initial_value(2),
            "{method}: CLR of the partial rollback not replayed"
        );
    }
}

#[test]
fn crash_mid_transaction_after_partial_rollback_rolls_back_rest() {
    let e = engine();
    let t = e.begin().unwrap();
    e.update(t, 1, b"x1".to_vec()).unwrap();
    let sp = e.savepoint(t).unwrap();
    e.update(t, 2, b"x2".to_vec()).unwrap();
    e.rollback_to(t, sp).unwrap();
    e.update(t, 3, b"x3".to_vec()).unwrap();
    // No commit: crash. The whole transaction is a loser; undo must walk
    // through the CLR (skipping via undo_next) and compensate 1 and 3.
    e.crash();
    let report = e.recover(RecoveryMethod::Log2).unwrap();
    assert_eq!(report.breakdown.losers_undone, 1);
    for k in [1u64, 2, 3] {
        assert_eq!(
            e.read(DEFAULT_TABLE, k).unwrap().unwrap(),
            e.config().initial_value(k),
            "key {k} not fully rolled back"
        );
    }
}

#[test]
fn savepoint_on_inactive_txn_errors() {
    let e = engine();
    let t = e.begin().unwrap();
    e.commit(t).unwrap();
    assert!(matches!(e.savepoint(t), Err(lr_common::Error::TxnNotActive(_))));
}
