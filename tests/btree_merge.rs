//! Delete rebalancing: merges and root collapse are SMO system
//! transactions, so a shrinking tree must recover exactly like a growing
//! one.

use lr_common::IoModel;
use lr_core::{Engine, EngineConfig, RecoveryMethod, DEFAULT_TABLE};

fn engine(merge: f64) -> Engine {
    Engine::build(EngineConfig {
        initial_rows: 0,
        pool_pages: 64,
        io_model: IoModel::zero(),
        merge_min_fill: merge,
        row_value_size: 64,
        ..EngineConfig::default()
    })
    .unwrap()
}

/// Insert `n` rows then delete all but every `keep_mod`-th.
fn grow_then_shrink(e: &mut Engine, n: u64, keep_mod: u64) {
    let t = e.begin().unwrap();
    for k in 0..n {
        e.insert(t, k, vec![k as u8; 64]).unwrap();
    }
    e.commit(t).unwrap();
    let t = e.begin().unwrap();
    for k in 0..n {
        if k % keep_mod != 0 {
            e.delete(t, k).unwrap();
        }
    }
    e.commit(t).unwrap();
}

#[test]
fn merging_shrinks_the_tree() {
    let mut with_merge = engine(0.25);
    grow_then_shrink(&mut with_merge, 4_000, 20);
    let merged = with_merge.verify_table(DEFAULT_TABLE).unwrap();

    let mut without = engine(0.0);
    grow_then_shrink(&mut without, 4_000, 20);
    let unmerged = without.verify_table(DEFAULT_TABLE).unwrap();

    assert_eq!(merged.records, unmerged.records, "same logical contents");
    assert!(
        merged.leaf_pages < unmerged.leaf_pages / 2,
        "merging should reclaim most leaves: {} vs {}",
        merged.leaf_pages,
        unmerged.leaf_pages
    );
    // Contents identical either way.
    assert_eq!(
        with_merge.scan_table(DEFAULT_TABLE).unwrap(),
        without.scan_table(DEFAULT_TABLE).unwrap()
    );
}

#[test]
fn root_collapse_reduces_height() {
    let mut e = engine(0.25);
    grow_then_shrink(&mut e, 4_000, 100);
    let s = e.verify_table(DEFAULT_TABLE).unwrap();
    assert_eq!(s.records, 40);
    assert!(s.height <= 2, "40 rows should collapse to height <=2, got {}", s.height);
}

#[test]
fn shrunk_tree_recovers_with_every_method() {
    let mut e = Engine::build(EngineConfig {
        initial_rows: 0,
        pool_pages: 64,
        io_model: IoModel::zero(),
        merge_min_fill: 0.25,
        row_value_size: 64,
        aries_ckpt_capture: true,
        perfect_delta_lsns: true,
        ..EngineConfig::default()
    })
    .unwrap();
    // One checkpoint up front (ARIES-ckpt needs its snapshot record);
    // everything after it — all growth and all merges — is in the redo
    // window.
    e.checkpoint().unwrap();
    grow_then_shrink(&mut e, 3_000, 10);
    e.crash();
    let reference: Vec<_> = {
        let f = e.fork_crashed().unwrap();
        f.recover(RecoveryMethod::Log0).unwrap();
        f.verify_table(DEFAULT_TABLE).unwrap();
        f.scan_table(DEFAULT_TABLE).unwrap()
    };
    assert_eq!(reference.len(), 300);
    for method in RecoveryMethod::all() {
        if method == RecoveryMethod::Log0 {
            continue;
        }
        let f = e.fork_crashed().unwrap();
        f.recover(method).unwrap();
        f.verify_table(DEFAULT_TABLE)
            .unwrap_or_else(|err| panic!("{method}: tree corrupt after recovery: {err}"));
        assert_eq!(
            f.scan_table(DEFAULT_TABLE).unwrap(),
            reference,
            "{method}: diverged on shrunk tree"
        );
    }
}

#[test]
fn merge_then_more_work_then_crash() {
    // Interleave shrinking with fresh inserts and updates, crash, recover.
    let mut e = engine(0.3);
    grow_then_shrink(&mut e, 2_000, 5);
    e.checkpoint().unwrap();
    let t = e.begin().unwrap();
    for k in 10_000..10_300u64 {
        e.insert(t, k, vec![1u8; 64]).unwrap();
    }
    for k in (0..2_000).step_by(5) {
        e.update(t, k, vec![2u8; 64]).unwrap();
    }
    e.commit(t).unwrap();
    e.crash();
    e.recover(RecoveryMethod::Log2).unwrap();
    let s = e.verify_table(DEFAULT_TABLE).unwrap();
    assert_eq!(s.records, 400 + 300);
    assert_eq!(e.read(DEFAULT_TABLE, 10_150).unwrap().unwrap(), vec![1u8; 64]);
    assert_eq!(e.read(DEFAULT_TABLE, 100).unwrap().unwrap(), vec![2u8; 64]);
}
