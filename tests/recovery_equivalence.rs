//! The central correctness claim, tested end-to-end: **every recovery
//! method produces exactly the same database state** — equal to the
//! committed-state oracle — from the same crash.
//!
//! Methodology mirrors §5.1: the workload generator is seeded, so each
//! method replays a byte-identical log against a byte-identical stable
//! image.

use lr_common::IoModel;
use lr_core::{Engine, EngineConfig, RecoveryMethod, ShadowDb, DEFAULT_TABLE};
use lr_workload::{run_to_crash, CrashScenario, TxnGenerator, WorkloadSpec};

fn base_config() -> EngineConfig {
    EngineConfig {
        initial_rows: 3_000,
        pool_pages: 48,
        io_model: IoModel::zero(),
        dirty_batch_cap: 24,
        flush_batch_cap: 24,
        // Capture everything every method could need, so one log serves
        // the whole spectrum — exactly the paper's common-log trick.
        aries_ckpt_capture: true,
        perfect_delta_lsns: true,
        ..EngineConfig::default()
    }
}

fn scenario() -> CrashScenario {
    CrashScenario {
        updates_per_checkpoint: 300,
        checkpoints_before_crash: 3,
        tail_updates: 30,
        warm_cache: true,
    }
}

/// Run the seeded workload to the crash point and recover with `method`;
/// return the full table contents.
fn crash_and_recover(method: RecoveryMethod, seed: u64) -> Vec<(u64, Vec<u8>)> {
    let cfg = base_config();
    let mut shadow = ShadowDb::with_initial_rows(&cfg);
    let mut gen = TxnGenerator::new(WorkloadSpec::paper_default(cfg.initial_rows, 100, seed));
    let mut engine = Engine::build(cfg).unwrap();
    run_to_crash(&mut engine, &mut shadow, &mut gen, &scenario()).unwrap();
    let report = engine.recover(method).unwrap();
    assert_eq!(report.method, method);
    shadow
        .verify_against(&engine)
        .unwrap_or_else(|e| panic!("{method} diverged from the committed oracle: {e}"));
    engine.verify_table(DEFAULT_TABLE).expect("B-tree well-formed after recovery");
    engine.scan_table(DEFAULT_TABLE).unwrap()
}

#[test]
fn all_methods_recover_identical_state() {
    let seed = 20260613;
    let reference = crash_and_recover(RecoveryMethod::Log0, seed);
    assert!(!reference.is_empty());
    for method in [
        RecoveryMethod::Log1,
        RecoveryMethod::Log2,
        RecoveryMethod::Sql1,
        RecoveryMethod::Sql2,
        RecoveryMethod::AriesCkpt,
        RecoveryMethod::LogPerfect,
        RecoveryMethod::LogReduced,
        RecoveryMethod::Log2DptPrefetch,
    ] {
        let state = crash_and_recover(method, seed);
        assert_eq!(state.len(), reference.len(), "{method}: row count diverged from Log0");
        assert_eq!(state, reference, "{method}: contents diverged from Log0");
    }
}

#[test]
fn equivalence_holds_across_seeds() {
    for seed in [1u64, 99, 4242] {
        let a = crash_and_recover(RecoveryMethod::Log2, seed);
        let b = crash_and_recover(RecoveryMethod::Sql2, seed);
        assert_eq!(a, b, "seed {seed}: Log2 vs SQL2 diverged");
    }
}

#[test]
fn double_recovery_is_idempotent() {
    // Crash again immediately after recovery (redo window nearly empty —
    // the post-recovery checkpoint ran) and recover with a different
    // method; state must be unchanged.
    let cfg = base_config();
    let mut shadow = ShadowDb::with_initial_rows(&cfg);
    let mut gen = TxnGenerator::new(WorkloadSpec::paper_default(cfg.initial_rows, 100, 7));
    let mut engine = Engine::build(cfg).unwrap();
    run_to_crash(&mut engine, &mut shadow, &mut gen, &scenario()).unwrap();

    engine.recover(RecoveryMethod::Log1).unwrap();
    let after_first = engine.scan_table(DEFAULT_TABLE).unwrap();
    engine.crash();
    engine.recover(RecoveryMethod::Sql1).unwrap();
    let after_second = engine.scan_table(DEFAULT_TABLE).unwrap();
    assert_eq!(after_first, after_second);
    shadow.verify_against(&engine).unwrap();
}

#[test]
fn recovery_with_in_flight_losers_rolls_them_back() {
    // Crash with an uncommitted transaction mid-flight; every method's
    // undo pass must erase it.
    let cfg = base_config();
    let engine = Engine::build(cfg.clone()).unwrap();
    let committed = engine.begin().unwrap();
    engine.update(committed, 10, b"committed-win".to_vec()).unwrap();
    engine.commit(committed).unwrap();
    engine.checkpoint().unwrap();

    let loser = engine.begin().unwrap();
    engine.update(loser, 10, b"loser-overwrite".to_vec()).unwrap();
    engine.update(loser, 11, b"loser-touch".to_vec()).unwrap();
    engine.insert(loser, 99_999, b"loser-insert".to_vec()).unwrap();
    // No commit: crash now.
    engine.crash();

    let report = engine.recover(RecoveryMethod::Log1).unwrap();
    assert_eq!(report.breakdown.losers_undone, 1);
    assert_eq!(report.breakdown.undo_ops, 3);
    assert_eq!(engine.read(DEFAULT_TABLE, 10).unwrap().unwrap(), b"committed-win".to_vec());
    assert_eq!(engine.read(DEFAULT_TABLE, 11).unwrap().unwrap(), cfg.initial_value(11));
    assert_eq!(engine.read(DEFAULT_TABLE, 99_999).unwrap(), None);
}
