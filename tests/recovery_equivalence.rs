//! The central correctness claim, tested end-to-end: **every recovery
//! method produces exactly the same database state** — equal to the
//! committed-state oracle — from the same crash.
//!
//! Methodology mirrors §5.1: the workload generator is seeded, so each
//! method replays a byte-identical log against a byte-identical stable
//! image.

use lr_common::IoModel;
use lr_core::{Engine, EngineConfig, RecoveryMethod, RecoveryOptions, ShadowDb, DEFAULT_TABLE};
use lr_workload::{
    run_concurrent, run_to_crash, spill_concurrent, CrashScenario, TxnGenerator, WorkloadSpec,
};

fn base_config() -> EngineConfig {
    EngineConfig {
        initial_rows: 3_000,
        pool_pages: 48,
        io_model: IoModel::zero(),
        dirty_batch_cap: 24,
        flush_batch_cap: 24,
        // Capture everything every method could need, so one log serves
        // the whole spectrum — exactly the paper's common-log trick.
        aries_ckpt_capture: true,
        perfect_delta_lsns: true,
        ..EngineConfig::default()
    }
}

fn scenario() -> CrashScenario {
    CrashScenario {
        updates_per_checkpoint: 300,
        checkpoints_before_crash: 3,
        tail_updates: 30,
        warm_cache: true,
    }
}

/// Post-recovery observables: full table contents plus the loser set the
/// undo pass rolled back as `(losers undone, undo ops)`.
type RecoveredState = (Vec<(u64, Vec<u8>)>, (u64, u64));

/// Run the seeded workload to the crash point and recover with `method`
/// under `workers`.
fn crash_and_recover_with(method: RecoveryMethod, seed: u64, workers: usize) -> RecoveredState {
    let cfg = base_config();
    let mut shadow = ShadowDb::with_initial_rows(&cfg);
    let mut gen = TxnGenerator::new(WorkloadSpec::paper_default(cfg.initial_rows, 100, seed));
    let mut engine = Engine::build(cfg).unwrap();
    run_to_crash(&mut engine, &mut shadow, &mut gen, &scenario()).unwrap();
    let report = engine.recover_with(method, RecoveryOptions::with_workers(workers)).unwrap();
    assert_eq!(report.method, method);
    assert_eq!(report.breakdown.workers, workers as u64);
    shadow.verify_against(&engine).unwrap_or_else(|e| {
        panic!("{method} (workers={workers}) diverged from the committed oracle: {e}")
    });
    engine.verify_table(DEFAULT_TABLE).expect("B-tree well-formed after recovery");
    let losers = (report.breakdown.losers_undone, report.breakdown.undo_ops);
    (engine.scan_table(DEFAULT_TABLE).unwrap(), losers)
}

/// Serial-pipeline convenience used by the original method-equivalence
/// tests.
fn crash_and_recover(method: RecoveryMethod, seed: u64) -> Vec<(u64, Vec<u8>)> {
    crash_and_recover_with(method, seed, 1).0
}

#[test]
fn all_methods_recover_identical_state() {
    let seed = 20260613;
    let reference = crash_and_recover(RecoveryMethod::Log0, seed);
    assert!(!reference.is_empty());
    for method in [
        RecoveryMethod::Log1,
        RecoveryMethod::Log2,
        RecoveryMethod::Sql1,
        RecoveryMethod::Sql2,
        RecoveryMethod::AriesCkpt,
        RecoveryMethod::LogPerfect,
        RecoveryMethod::LogReduced,
        RecoveryMethod::Log2DptPrefetch,
    ] {
        let state = crash_and_recover(method, seed);
        assert_eq!(state.len(), reference.len(), "{method}: row count diverged from Log0");
        assert_eq!(state, reference, "{method}: contents diverged from Log0");
    }
}

#[test]
fn parallel_recovery_matches_serial_for_every_method() {
    // The partitioned pipeline's core claim: for every method, workers ∈
    // {2, 4} reproduce exactly the workers=1 state (table contents) and
    // the same loser set. One seeded crash per (method, workers) cell —
    // the deterministic workload replays a byte-identical log each time.
    let seed = 20260729;
    for method in RecoveryMethod::all() {
        let (reference, ref_losers) = crash_and_recover_with(method, seed, 1);
        assert!(!reference.is_empty());
        for workers in [2usize, 4] {
            let (state, losers) = crash_and_recover_with(method, seed, workers);
            assert_eq!(
                losers, ref_losers,
                "{method} workers={workers}: loser set diverged from serial"
            );
            assert_eq!(
                state, reference,
                "{method} workers={workers}: contents diverged from serial"
            );
        }
    }
}

#[test]
fn crash_during_spill_recovers_identically_serial_and_parallel() {
    // Larger-than-cache concurrent workload (the PR-2 spill preset), with
    // in-flight losers at the crash. The same crash image is forked and
    // recovered serially and with 4 workers; both must produce identical
    // state — this exercises parallel redo under real eviction pressure
    // (workers' pages get flushed and refetched mid-pass).
    let (cfg, scenario) = spill_concurrent(4, 60);
    let engine = Engine::build(cfg).unwrap().into_shared();
    run_concurrent(&engine, &scenario).unwrap();
    // Leave two transactions in flight so undo has real work.
    let l1 = engine.begin().unwrap();
    engine.update(l1, 1, b"spill-loser-1".to_vec()).unwrap();
    engine.update(l1, 2, b"spill-loser-1b".to_vec()).unwrap();
    let l2 = engine.begin().unwrap();
    engine.update(l2, 3, b"spill-loser-2".to_vec()).unwrap();
    engine.crash();

    let serial = engine.fork_crashed().unwrap();
    let parallel = engine.fork_crashed().unwrap();
    let rs = serial.recover_with(RecoveryMethod::Log1, RecoveryOptions::with_workers(1)).unwrap();
    let rp = parallel.recover_with(RecoveryMethod::Log1, RecoveryOptions::with_workers(4)).unwrap();
    assert_eq!(rs.breakdown.losers_undone, 2);
    assert_eq!(rp.breakdown.losers_undone, 2);
    assert_eq!(rs.breakdown.undo_ops, rp.breakdown.undo_ops);
    serial.verify_table(DEFAULT_TABLE).unwrap();
    parallel.verify_table(DEFAULT_TABLE).unwrap();
    assert_eq!(
        serial.scan_table(DEFAULT_TABLE).unwrap(),
        parallel.scan_table(DEFAULT_TABLE).unwrap(),
        "spill crash: parallel state diverged from serial"
    );
}

#[test]
fn equivalence_holds_across_seeds() {
    for seed in [1u64, 99, 4242] {
        let a = crash_and_recover(RecoveryMethod::Log2, seed);
        let b = crash_and_recover(RecoveryMethod::Sql2, seed);
        assert_eq!(a, b, "seed {seed}: Log2 vs SQL2 diverged");
    }
}

#[test]
fn double_recovery_is_idempotent() {
    // Crash again immediately after recovery (redo window nearly empty —
    // the post-recovery checkpoint ran) and recover with a different
    // method; state must be unchanged.
    let cfg = base_config();
    let mut shadow = ShadowDb::with_initial_rows(&cfg);
    let mut gen = TxnGenerator::new(WorkloadSpec::paper_default(cfg.initial_rows, 100, 7));
    let mut engine = Engine::build(cfg).unwrap();
    run_to_crash(&mut engine, &mut shadow, &mut gen, &scenario()).unwrap();

    engine.recover(RecoveryMethod::Log1).unwrap();
    let after_first = engine.scan_table(DEFAULT_TABLE).unwrap();
    engine.crash();
    engine.recover(RecoveryMethod::Sql1).unwrap();
    let after_second = engine.scan_table(DEFAULT_TABLE).unwrap();
    assert_eq!(after_first, after_second);
    shadow.verify_against(&engine).unwrap();
}

#[test]
fn recovery_with_in_flight_losers_rolls_them_back() {
    // Crash with an uncommitted transaction mid-flight; every method's
    // undo pass must erase it.
    let cfg = base_config();
    let engine = Engine::build(cfg.clone()).unwrap();
    let committed = engine.begin().unwrap();
    engine.update(committed, 10, b"committed-win".to_vec()).unwrap();
    engine.commit(committed).unwrap();
    engine.checkpoint().unwrap();

    let loser = engine.begin().unwrap();
    engine.update(loser, 10, b"loser-overwrite".to_vec()).unwrap();
    engine.update(loser, 11, b"loser-touch".to_vec()).unwrap();
    engine.insert(loser, 99_999, b"loser-insert".to_vec()).unwrap();
    // No commit: crash now.
    engine.crash();

    let report = engine.recover(RecoveryMethod::Log1).unwrap();
    assert_eq!(report.breakdown.losers_undone, 1);
    assert_eq!(report.breakdown.undo_ops, 3);
    assert_eq!(engine.read(DEFAULT_TABLE, 10).unwrap().unwrap(), b"committed-win".to_vec());
    assert_eq!(engine.read(DEFAULT_TABLE, 11).unwrap().unwrap(), cfg.initial_value(11));
    assert_eq!(engine.read(DEFAULT_TABLE, 99_999).unwrap(), None);
}
