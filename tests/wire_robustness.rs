//! Frame-corruption robustness: every malformed byte sequence a client
//! can send — truncations, bit-flips, bad CRCs, oversized length
//! prefixes — must produce either a **typed error reply** (when the
//! stream framing is intact enough to answer on) or a **clean
//! disconnect** (when it is not), never a panic, a wedge, or a poisoned
//! server. Both network fronts are swept: the DC's wire server
//! ([`lr_dc::DcServer`] over [`lr_dc::TcpDcServer`]) and the
//! client-facing session server ([`lr_server::Server`]).

use lr_common::codec::{frame, read_raw_frame_from, unframe, MAX_FRAME_BODY};
use lr_common::{IoModel, SimClock, TableId};
use lr_core::{Engine, EngineConfig};
use lr_dc::server::{envelope, open_envelope};
use lr_dc::{DcConfig, DcReply, DcRequest, DcServer, TcpDcServer, WireError};
use lr_server::protocol::{ClientReply, ClientRequest};
use lr_server::{Server, ServerConfig};
use lr_wal::Wal;
use std::io::Write;
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::Arc;

// ---------------------------------------------------------------------
// corruption battery
// ---------------------------------------------------------------------

/// A corruption applied to a valid frame, and what the server owes us
/// back: a typed error reply on the same connection, or a clean close.
enum Expect {
    /// The frame arrives whole but cannot be trusted or understood:
    /// a typed error reply, echoed under request id 0 (the server
    /// could not trust the id inside the frame).
    TypedErrorEchoZero,
    /// The stream itself is broken: the server hangs up cleanly.
    CleanClose,
}

fn battery(valid: &[u8]) -> Vec<(&'static str, Vec<u8>, Expect)> {
    let mut flipped_body = valid.to_vec();
    *flipped_body.last_mut().unwrap() ^= 0x40; // body bit-flip → CRC mismatch
    let mut bad_crc = valid.to_vec();
    bad_crc[4] ^= 0xFF; // CRC field itself corrupted
    let garbage = frame(&[0xDE, 0xAD]); // valid CRC over an un-openable envelope
    let truncated = valid[..valid.len() - 3].to_vec(); // frame cut mid-body
    let runt = valid[..3].to_vec(); // cut mid-header
    let mut oversized = Vec::new(); // length prefix past the cap
    oversized.extend_from_slice(&((MAX_FRAME_BODY as u32) + 1).to_le_bytes());
    oversized.extend_from_slice(&0u32.to_le_bytes());
    vec![
        ("bit-flip in body", flipped_body, Expect::TypedErrorEchoZero),
        ("corrupted crc field", bad_crc, Expect::TypedErrorEchoZero),
        ("well-framed garbage payload", garbage, Expect::TypedErrorEchoZero),
        ("truncated frame", truncated, Expect::CleanClose),
        ("runt header", runt, Expect::CleanClose),
        ("oversized length prefix", oversized, Expect::CleanClose),
    ]
}

/// Send `bytes` raw, then close our write half so a server waiting for
/// the rest of a torn frame sees EOF instead of blocking forever.
/// Returns the server's reply frame, or `None` on a clean close.
fn send_raw(addr: SocketAddr, bytes: &[u8]) -> Option<Vec<u8>> {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.set_nodelay(true).unwrap();
    stream.write_all(bytes).unwrap();
    stream.shutdown(Shutdown::Write).unwrap();
    stream.set_read_timeout(Some(std::time::Duration::from_secs(10))).unwrap();
    read_raw_frame_from(&mut stream).ok().flatten()
}

fn is_wire_error(w: &WireError) -> bool {
    matches!(w, WireError::RecoveryInvariant(msg) if msg.contains("wire"))
}

// ---------------------------------------------------------------------
// the DC wire server
// ---------------------------------------------------------------------

#[test]
fn dc_server_answers_corruption_typed_or_hangs_up_clean() {
    let reg = lr_dc::backend("btree").unwrap();
    let mut disk = lr_storage::SimDisk::new(512, 0, SimClock::new(), IoModel::zero());
    (reg.format)(&mut disk).unwrap();
    let inner = (reg.open)(Box::new(disk), Wal::new_shared(4096), DcConfig::default()).unwrap();
    inner.create_table(TableId(1)).unwrap();
    let tcp = TcpDcServer::spawn(Arc::new(DcServer::new(inner))).unwrap();
    let addr = tcp.addr();

    let valid = frame(&envelope(1, &DcRequest::Stats.encode()));
    for (name, bytes, expect) in battery(&valid) {
        match (send_raw(addr, &bytes), expect) {
            (Some(raw), Expect::TypedErrorEchoZero) => {
                let (echo, body) = open_envelope(unframe(&raw).unwrap()).unwrap();
                assert_eq!(echo, 0, "{name}: corrupt frames answer under id 0");
                match DcReply::decode(body).unwrap() {
                    DcReply::Err(w) => assert!(is_wire_error(&w), "{name}: got {w:?}"),
                    other => panic!("{name}: expected a typed error, got {other:?}"),
                }
            }
            (None, Expect::CleanClose) => {}
            (got, _) => panic!("{name}: wrong outcome (reply present: {})", got.is_some()),
        }
        // The server survives every case: a fresh, honest request on a
        // fresh connection still gets real stats back.
        let raw = send_raw(addr, &valid).expect("server still serving after corruption");
        let (echo, body) = open_envelope(unframe(&raw).unwrap()).unwrap();
        assert_eq!(echo, 1);
        assert!(matches!(DcReply::decode(body).unwrap(), DcReply::Stats(_)), "{name}: aftermath");
    }
}

// ---------------------------------------------------------------------
// the client-facing session server
// ---------------------------------------------------------------------

#[test]
fn client_server_answers_corruption_typed_or_hangs_up_clean() {
    let engine = Engine::build(EngineConfig {
        initial_rows: 8,
        pool_pages: 32,
        io_model: IoModel::zero(),
        ..EngineConfig::default()
    })
    .unwrap()
    .into_shared();
    let (server, addr) = Server::start_tcp(engine, ServerConfig::default()).unwrap();

    let valid = frame(&envelope(1, &ClientRequest::Ping.encode()));
    for (name, bytes, expect) in battery(&valid) {
        match (send_raw(addr, &bytes), expect) {
            (Some(raw), Expect::TypedErrorEchoZero) => {
                let (echo, body) = open_envelope(unframe(&raw).unwrap()).unwrap();
                assert_eq!(echo, 0, "{name}: corrupt frames answer under id 0");
                match ClientReply::decode(body).unwrap() {
                    ClientReply::Err(w) => assert!(is_wire_error(&w), "{name}: got {w:?}"),
                    other => panic!("{name}: expected a typed error, got {other:?}"),
                }
            }
            (None, Expect::CleanClose) => {}
            (got, _) => panic!("{name}: wrong outcome (reply present: {})", got.is_some()),
        }
        let raw = send_raw(addr, &valid).expect("server still serving after corruption");
        let (echo, body) = open_envelope(unframe(&raw).unwrap()).unwrap();
        assert_eq!(echo, 1);
        assert!(
            matches!(ClientReply::decode(body).unwrap(), ClientReply::Pong),
            "{name}: aftermath"
        );
    }

    // A decodable envelope around an unknown request tag is the client's
    // bug, not the stream's: the error comes back under the *real*
    // request id, so a pipelining client can attribute it.
    let unknown_tag = frame(&envelope(42, &[0xEE]));
    let raw = send_raw(addr, &unknown_tag).unwrap();
    let (echo, body) = open_envelope(unframe(&raw).unwrap()).unwrap();
    assert_eq!(echo, 42, "decodable envelope keeps its request id");
    assert!(matches!(ClientReply::decode(body).unwrap(), ClientReply::Err(w) if is_wire_error(&w)));

    // Every corrupt frame that got a typed reply was counted.
    assert!(server.stats().request_errors >= 4, "corruption replies are counted as errors");
}
