//! Crash-torture demo: repeated random crash/recover cycles with the
//! recovery method rotating, verified against a committed-state oracle
//! after every cycle.
//!
//! ```sh
//! cargo run --release -p lr-core --example crash_torture_demo [cycles]
//! ```

use lr_core::{Engine, EngineConfig, RecoveryMethod, ShadowDb, DEFAULT_TABLE};
use lr_workload::{Op, OpMix, TxnGenerator, WorkloadSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() -> lr_common::Result<()> {
    let cycles: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(16);

    let cfg = EngineConfig {
        initial_rows: 4_000,
        pool_pages: 64,
        dirty_batch_cap: 24,
        flush_batch_cap: 24,
        aries_ckpt_capture: true,
        perfect_delta_lsns: true,
        ..EngineConfig::default()
    };
    let mut shadow = ShadowDb::with_initial_rows(&cfg);
    let spec = WorkloadSpec {
        mix: OpMix { update_pct: 70, read_pct: 10, insert_pct: 12, delete_pct: 8 },
        ..WorkloadSpec::paper_default(cfg.initial_rows, 80, 99)
    };
    let mut gen = TxnGenerator::new(spec);
    let engine = Engine::build(cfg)?;
    let mut rng = StdRng::seed_from_u64(31337);
    let methods = RecoveryMethod::all();

    for cycle in 0..cycles {
        // Random amount of work with random aborts and checkpoints.
        let txns = rng.gen_range(10..60);
        let mut aborted = 0u32;
        for _ in 0..txns {
            let txn = engine.begin()?;
            for op in gen.next_txn() {
                match op {
                    Op::Update { key, value } => {
                        engine.update(txn, key, value.clone())?;
                        shadow.stage_put(txn, DEFAULT_TABLE, key, value);
                    }
                    Op::Read { key } => {
                        let _ = engine.read(DEFAULT_TABLE, key)?;
                    }
                    Op::Insert { key, value } => {
                        engine.insert(txn, key, value.clone())?;
                        shadow.stage_put(txn, DEFAULT_TABLE, key, value);
                    }
                    Op::Delete { key } => match engine.delete(txn, key) {
                        Ok(()) => shadow.stage_delete(txn, DEFAULT_TABLE, key),
                        Err(lr_common::Error::KeyNotFound { .. }) => {}
                        Err(e) => return Err(e),
                    },
                }
            }
            if rng.gen_range(0..100) < 10 {
                engine.abort(txn)?;
                shadow.abort(txn);
                aborted += 1;
            } else {
                engine.commit(txn)?;
                shadow.commit(txn);
            }
            if rng.gen_range(0..100) < 6 {
                engine.checkpoint()?;
            }
        }

        // Sometimes crash with a loser mid-flight.
        let mut loser_note = "";
        if rng.gen_bool(0.5) {
            let t = engine.begin()?;
            engine.update(t, rng.gen_range(0..4_000), b"in-flight".to_vec())?;
            loser_note = " +loser";
        }

        let method = methods[cycle % methods.len()];
        let snap = engine.crash();
        shadow.crash();
        let report = engine.recover(method)?;
        shadow.verify_against(&engine)?;
        engine.verify_table(DEFAULT_TABLE)?;

        println!(
            "cycle {cycle:>3}: {txns} txns ({aborted} aborted){loser_note}, \
             {} dirty @ crash -> {:<11} redo {:>8.1} ms, {} reapplied, {} undone  [OK]",
            snap.dirty_pages,
            method.name(),
            report.redo_ms(),
            report.breakdown.ops_reapplied,
            report.breakdown.losers_undone,
        );
    }
    println!("\n{cycles} cycles survived; state verified against the oracle every time.");
    Ok(())
}
