//! Side-by-side comparison of every recovery method on the same workload —
//! a miniature of the paper's §5 experiment, printable in seconds.
//!
//! ```sh
//! cargo run --release -p lr-core --example recovery_comparison
//! ```
//!
//! Each method replays the byte-identical log produced by the seeded
//! workload (the paper's common-log methodology), so differences come only
//! from the recovery algorithm.

use lr_core::{Engine, EngineConfig, RecoveryMethod, ShadowDb};
use lr_workload::report::Table;
use lr_workload::{run_to_crash, CrashScenario, TxnGenerator, WorkloadSpec};

fn main() -> lr_common::Result<()> {
    let seed = 2026;
    let mut table = Table::new(&[
        "method",
        "redo(ms)",
        "total(ms)",
        "DPT",
        "data-fetch",
        "idx-fetch",
        "reapplied",
        "skipped",
        "stalls",
        "prefetched",
    ]);

    for method in RecoveryMethod::all() {
        let cfg = EngineConfig {
            initial_rows: 16_000, // ~500 data pages
            pool_pages: 96,
            dirty_batch_cap: 48,
            flush_batch_cap: 48,
            // Capture the extras the ablation methods need; the log is
            // identical for every method because the config is.
            aries_ckpt_capture: true,
            perfect_delta_lsns: true,
            ..EngineConfig::default()
        };
        let mut shadow = ShadowDb::with_initial_rows(&cfg);
        let mut gen = TxnGenerator::new(WorkloadSpec::paper_default(cfg.initial_rows, 100, seed));
        let mut engine = Engine::build(cfg)?;
        let scenario = CrashScenario {
            updates_per_checkpoint: 1_000,
            checkpoints_before_crash: 4,
            tail_updates: 25,
            warm_cache: true,
        };
        run_to_crash(&mut engine, &mut shadow, &mut gen, &scenario)?;
        let r = engine.recover(method)?;
        shadow.verify_against(&engine)?;

        let b = &r.breakdown;
        table.row(vec![
            method.name().to_string(),
            format!("{:.1}", r.redo_ms()),
            format!("{:.1}", r.total_ms()),
            b.dpt_size.to_string(),
            b.data_pages_fetched.to_string(),
            b.index_pages_fetched.to_string(),
            b.ops_reapplied.to_string(),
            (b.skipped_no_dpt_entry + b.skipped_rlsn + b.skipped_plsn).to_string(),
            b.data_stall_events.to_string(),
            b.prefetch_pages.to_string(),
        ]);
    }

    println!("All methods recovered identical state (verified against the oracle).\n");
    println!("{}", table.render());
    println!("Log0 = basic logical redo; Log1/2 = Δ-DPT logical (2 adds prefetch);");
    println!("SQL1/2 = physiological baseline; ablations per §3.1 and Appendix D.");
    Ok(())
}
