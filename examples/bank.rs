//! Bank demo: atomic transfers under crashes — the textbook motivation for
//! write-ahead logging, running on logical recovery.
//!
//! ```sh
//! cargo run --release -p lr-core --example bank [transfers]
//! ```
//!
//! 1,000 accounts; each transaction debits one account and credits another.
//! The demo crashes the engine repeatedly — including mid-transfer — and
//! checks after every recovery that the total balance is exactly what it
//! started as. A single torn transfer would show up immediately.

use lr_common::IoModel;
use lr_core::{Engine, EngineConfig, RecoveryMethod, DEFAULT_TABLE};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const ACCOUNTS: u64 = 1_000;
const INITIAL: u64 = 10_000;

fn bal(v: &[u8]) -> u64 {
    u64::from_le_bytes(v[..8].try_into().unwrap())
}

fn main() -> lr_common::Result<()> {
    let transfers: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(2_000);

    let cfg = EngineConfig {
        initial_rows: 0,
        pool_pages: 64,
        row_value_size: 8,
        io_model: IoModel::zero(),
        // The crash rotation below replays every method, including the
        // ARIES-checkpoint ablation, which needs the DPT snapshots.
        aries_ckpt_capture: true,
        ..EngineConfig::default()
    };
    let engine = Engine::build(cfg)?;

    // Open the accounts.
    let t = engine.begin()?;
    for k in 0..ACCOUNTS {
        engine.insert(t, k, INITIAL.to_le_bytes().to_vec())?;
    }
    engine.commit(t)?;
    engine.checkpoint()?;
    println!("opened {ACCOUNTS} accounts x {INITIAL} = {} total", ACCOUNTS * INITIAL);

    let mut rng = StdRng::seed_from_u64(7);
    let methods = RecoveryMethod::all();
    let mut done = 0u64;
    let mut crashes = 0usize;

    while done < transfers {
        // A burst of transfers.
        let burst = rng.gen_range(50..300).min(transfers - done);
        for _ in 0..burst {
            let from = rng.gen_range(0..ACCOUNTS);
            let to = (from + rng.gen_range(1..ACCOUNTS)) % ACCOUNTS;
            let t = engine.begin()?;
            let fb = bal(&engine.read(DEFAULT_TABLE, from)?.unwrap());
            let tb = bal(&engine.read(DEFAULT_TABLE, to)?.unwrap());
            let amount = rng.gen_range(0..=fb.min(500));
            engine.update(t, from, (fb - amount).to_le_bytes().to_vec())?;
            engine.update(t, to, (tb + amount).to_le_bytes().to_vec())?;
            engine.commit(t)?;
        }
        done += burst;
        if rng.gen_bool(0.3) {
            engine.checkpoint()?;
        }

        // Crash — half the time with a transfer torn mid-flight.
        if rng.gen_bool(0.5) {
            let from = rng.gen_range(0..ACCOUNTS);
            let t = engine.begin()?;
            let fb = bal(&engine.read(DEFAULT_TABLE, from)?.unwrap());
            engine.update(t, from, fb.saturating_sub(123).to_le_bytes().to_vec())?;
            // ... and the matching credit never happens.
        }
        let method = methods[crashes % methods.len()];
        engine.crash();
        let report = engine.recover(method)?;
        crashes += 1;

        let total: u64 = {
            let mut sum = 0u64;
            for (_, v) in engine.scan_table(DEFAULT_TABLE)? {
                sum += bal(&v);
            }
            sum
        };
        assert_eq!(total, ACCOUNTS * INITIAL, "MONEY NOT CONSERVED");
        println!(
            "crash #{crashes}: {done}/{transfers} transfers, recovered with {:<11} \
             ({} redone, {} undone) — total still {total}  [conserved]",
            method.name(),
            report.breakdown.ops_reapplied,
            report.breakdown.undo_ops,
        );
    }
    println!("\n{done} transfers, {crashes} crashes, money conserved every time.");
    Ok(())
}
