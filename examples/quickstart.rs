//! Quickstart: build an engine, run transactions, crash it, recover it.
//!
//! ```sh
//! cargo run --release -p lr-core --example quickstart
//! ```

use lr_core::{Engine, EngineConfig, RecoveryMethod, DEFAULT_TABLE};

fn main() -> lr_common::Result<()> {
    // A small database: ~300 data pages, a 96-page cache.
    let cfg = EngineConfig { initial_rows: 10_000, pool_pages: 96, ..EngineConfig::default() };
    let engine = Engine::build(cfg)?;
    println!("loaded {} rows into the default table", 10_000);

    // A committed transaction: its effects must survive the crash.
    let t1 = engine.begin()?;
    engine.update(t1, 42, b"the answer".to_vec())?;
    engine.insert(t1, 1_000_000, b"brand new row".to_vec())?;
    engine.delete(t1, 7)?;
    engine.commit(t1)?;
    println!("t1 committed: update(42), insert(1000000), delete(7)");

    engine.checkpoint()?;
    println!("checkpoint taken (bCkpt -> RSSP at the DC -> eCkpt)");

    // An uncommitted transaction: recovery must roll it back.
    let t2 = engine.begin()?;
    engine.update(t2, 42, b"must vanish".to_vec())?;
    println!("t2 in flight (uncommitted update of key 42)");

    // Crash: cache, lock table, transaction table, Δ/BW intervals all gone.
    let snap = engine.crash();
    println!(
        "crash! {} dirty pages in a {}-frame cache, {} log records on the stable log",
        snap.dirty_pages, snap.pool_capacity, snap.wal_records
    );

    // Recover with the paper's flagship method: DPT-assisted logical redo
    // with index preload and PF-list prefetch.
    let report = engine.recover(RecoveryMethod::Log2)?;
    println!(
        "recovered with {} in {:.2} simulated ms \
         (analysis {:.2} ms, redo {:.2} ms, undo {:.2} ms)",
        report.method,
        report.total_ms(),
        report.breakdown.analysis_us as f64 / 1000.0,
        report.redo_ms(),
        report.breakdown.undo_us as f64 / 1000.0,
    );
    println!(
        "  DPT size {}, {} ops re-applied, {} skipped by the DPT screen, {} losers undone",
        report.breakdown.dpt_size,
        report.breakdown.ops_reapplied,
        report.breakdown.skipped_no_dpt_entry + report.breakdown.skipped_rlsn,
        report.breakdown.losers_undone,
    );

    // Committed effects are back; the loser is gone.
    assert_eq!(engine.read(DEFAULT_TABLE, 42)?.unwrap(), b"the answer");
    assert_eq!(engine.read(DEFAULT_TABLE, 1_000_000)?.unwrap(), b"brand new row");
    assert_eq!(engine.read(DEFAULT_TABLE, 7)?, None);
    println!("state verified: committed work present, in-flight work rolled back");
    Ok(())
}
