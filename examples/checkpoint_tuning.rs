//! Checkpoint-interval tuning (Appendix C in miniature): how the redo
//! window and the recovery method interact with checkpoint frequency.
//!
//! ```sh
//! cargo run --release -p lr-core --example checkpoint_tuning
//! ```

use lr_common::IoModel;
use lr_core::{Engine, EngineConfig, RecoveryMethod, ShadowDb};
use lr_workload::{run_to_crash, CrashScenario, TxnGenerator, WorkloadSpec};

fn main() -> lr_common::Result<()> {
    println!("redo time (simulated ms) as the checkpoint interval grows:\n");
    println!("{:>10}  {:>10}  {:>10}  {:>10}", "interval", "Log0", "Log1", "Log2");

    for factor in [1u64, 3, 9] {
        let cfg = EngineConfig {
            initial_rows: 16_000,
            pool_pages: 150,
            io_model: IoModel::default(),
            dirty_batch_cap: 48,
            flush_batch_cap: 48,
            ..EngineConfig::default()
        };
        let scenario = CrashScenario {
            updates_per_checkpoint: 500 * factor,
            checkpoints_before_crash: 3,
            tail_updates: 15,
            warm_cache: true,
        };
        let mut shadow = ShadowDb::with_initial_rows(&cfg);
        let mut gen = TxnGenerator::new(WorkloadSpec::paper_default(cfg.initial_rows, 100, 1));
        let mut engine = Engine::build(cfg)?;
        run_to_crash(&mut engine, &mut shadow, &mut gen, &scenario)
            .expect("scenario runs to the crash point");

        let mut row = vec![format!("{}x", factor)];
        for method in [RecoveryMethod::Log0, RecoveryMethod::Log1, RecoveryMethod::Log2] {
            let forked = engine.fork_crashed()?;
            let forked = forked;
            let report = forked.recover(method)?;
            shadow.verify_against(&forked)?;
            row.push(format!("{:.1}", report.redo_ms()));
        }
        println!("{:>10}  {:>10}  {:>10}  {:>10}", row[0], row[1], row[2], row[3]);
    }

    println!("\nLonger intervals mean longer redo logs: naive logical redo (Log0) pays");
    println!("linearly, the DPT caps Log1 near the dirty-cache equilibrium, and");
    println!("prefetching (Log2) shrugs the interval off almost entirely (App. C).");
    Ok(())
}
