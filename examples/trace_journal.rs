//! Trace-journal demo and schema check: run a traced workload, crash it,
//! recover with two redo workers, drain the journal, and validate every
//! line against the event schema.
//!
//! ```sh
//! cargo run --release --example trace_journal
//! ```
//!
//! Exits nonzero if any drained line fails
//! `lr_obs::trace::validate_journal_line` — CI runs this as the
//! journal-drain + schema-validation step.

use lr_common::IoModel;
use lr_core::{Engine, EngineConfig, RecoveryMethod, RecoveryOptions, DEFAULT_TABLE};
use std::collections::BTreeMap;

fn main() -> lr_common::Result<()> {
    let cfg = EngineConfig {
        initial_rows: 5_000,
        pool_pages: 1_024,
        io_model: IoModel::zero(),
        commit_force_us: 20,
        trace: true,
        ..EngineConfig::default()
    };
    let engine = Engine::build(cfg)?.into_shared();

    // Concurrent update traffic, then a checkpoint, then more traffic so
    // the crash leaves both winners and losers for recovery to journal.
    std::thread::scope(|s| {
        for t in 0..4u64 {
            let mut session = Engine::session(&engine);
            s.spawn(move || {
                for i in 0..200u64 {
                    let key = (t * 977 + i * 13) % 5_000;
                    session
                        .run_txn(10_000, |s| {
                            s.update_in(DEFAULT_TABLE, key, format!("t{t}-{i}").into_bytes())
                        })
                        .expect("update txn");
                }
            });
        }
    });
    engine.checkpoint()?;

    let journal = engine.drain_trace_json();
    let mut counts: BTreeMap<String, u64> = BTreeMap::new();
    let mut lines = 0u64;
    for line in journal.lines() {
        if let Err(e) = lr_obs::trace::validate_journal_line(line) {
            eprintln!("FAIL: invalid journal line {line}: {e}");
            std::process::exit(1);
        }
        let event = line.split("\"event\":\"").nth(1).and_then(|r| r.split('"').next());
        *counts.entry(event.unwrap_or("?").to_string()).or_insert(0) += 1;
        lines += 1;
    }
    println!("workload journal: {lines} lines, all schema-valid; event counts:");
    for (event, n) in &counts {
        println!("  {event:<24} {n}");
    }
    assert!(counts.contains_key("txn_commit"), "no commits journaled");
    assert!(counts.contains_key("group_commit_force"), "no forces journaled");

    // Crash + parallel recovery: the fork's own journal carries the
    // per-worker span timeline.
    engine.crash();
    let fork = engine.fork_crashed()?;
    fork.recover_with(RecoveryMethod::Log1, RecoveryOptions::with_workers(2))?;
    let mut spans = 0u64;
    for line in fork.drain_trace_json().lines() {
        if let Err(e) = lr_obs::trace::validate_journal_line(line) {
            eprintln!("FAIL: invalid recovery journal line {line}: {e}");
            std::process::exit(1);
        }
        if line.contains("\"event\":\"recovery_phase_end\"") {
            println!("  span: {line}");
            spans += 1;
        }
    }
    assert!(spans >= 4, "expected analysis + redo x2 + undo spans, saw {spans}");
    println!("recovery journal: {spans} phase spans, all schema-valid");
    println!("dropped events: {}", engine.trace().dropped_events());
    Ok(())
}
