//! Logical log shipping to a physically different replica (§1.1).
//!
//! ```sh
//! cargo run --release -p lr-core --example replica_log_shipping
//! ```
//!
//! The primary runs 4 KiB pages on a simulated disk; the replica runs
//! **1 KiB pages on a real file**. Because the shipped records are logical
//! (`table`, `key`, images — the piggybacked PIDs are ignored), the replica
//! applies them through its own B-tree and converges to the same logical
//! contents in a completely different physical layout.

use lr_common::{Lsn, TxnId};
use lr_core::replica::apply_committed_ops;
use lr_core::{Engine, EngineConfig, DEFAULT_TABLE};
use lr_dc::{DataComponent, DcConfig, WriteIntent};
use lr_storage::FileDisk;
use lr_wal::{LogPayload, LogRecord, Wal};

fn main() -> lr_common::Result<()> {
    // ---- primary: 4 KiB pages, in-memory simulated disk ----
    let cfg = EngineConfig {
        initial_rows: 5_000,
        page_size: 4096,
        pool_pages: 64,
        ..EngineConfig::default()
    };
    let initial_rows = cfg.initial_rows;
    let primary = Engine::build(cfg.clone())?;

    let t = primary.begin()?;
    for k in (0..5_000).step_by(7) {
        primary.update(t, k, format!("replicated-{k}").into_bytes())?;
    }
    primary.insert(t, 99_999, b"new-on-both".to_vec())?;
    primary.commit(t)?;

    // An aborted transaction — must never reach the replica.
    let loser = primary.begin()?;
    primary.update(loser, 0, b"aborted-garbage".to_vec())?;
    primary.abort(loser)?;
    println!("primary: committed 1 txn ({} updates + 1 insert), aborted 1", 5_000 / 7 + 1);

    // ---- replica: 1 KiB pages on a real file ----
    let path = std::env::temp_dir().join(format!("lr-replica-{}.db", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let mut disk = FileDisk::create(&path, 1024, 0)?;
    DataComponent::format_disk(&mut disk)?;
    let replica_wal = Wal::new_shared(4096);
    let replica = DataComponent::open(Box::new(disk), replica_wal, DcConfig::default())?;
    replica.create_table(DEFAULT_TABLE)?;

    // Bootstrap the replica from the primary's initial snapshot (a real
    // deployment ships a base backup; here the loaded rows are derivable).
    for k in 0..initial_rows {
        let v = cfg.initial_value(k);
        let info =
            replica.prepare_write(DEFAULT_TABLE, k, WriteIntent::Insert { value_len: v.len() })?;
        let rec = LogRecord {
            lsn: Lsn(1),
            payload: LogPayload::Insert {
                txn: TxnId(0),
                table: DEFAULT_TABLE,
                key: k,
                pid: info.pid,
                prev_lsn: Lsn::NULL,
                value: v,
            },
        };
        replica.apply_at(info.pid, &rec)?;
    }
    println!(
        "replica: bootstrapped {} rows on 1 KiB pages (file: {})",
        initial_rows,
        path.display()
    );

    // ---- ship the log ----
    let records = primary.wal().lock().scan_from(Lsn::NULL)?;
    let applied = apply_committed_ops(&replica, &records)?;
    replica.pool().flush_all()?;
    println!("shipped {} log records; applied {applied} committed logical ops", records.len());

    // ---- verify convergence ----
    let primary_rows = primary.scan_table(DEFAULT_TABLE)?;
    let tree = replica.tree(DEFAULT_TABLE)?.clone();
    let replica_rows = tree.scan_all(replica.pool())?;
    assert_eq!(primary_rows, replica_rows, "replica diverged!");

    let p_summary = primary.verify_table(DEFAULT_TABLE)?;
    let r_summary = lr_btree::verify_tree(&tree, replica.pool())?;
    println!("converged: {} identical rows", primary_rows.len());
    println!(
        "  primary : {} leaf pages, {} internal, height {} (4 KiB pages)",
        p_summary.leaf_pages, p_summary.internal_pages, p_summary.height
    );
    println!(
        "  replica : {} leaf pages, {} internal, height {} (1 KiB pages)",
        r_summary.leaf_pages, r_summary.internal_pages, r_summary.height
    );
    println!("same logical database, different physical shape — the point of logical logging.");
    std::fs::remove_file(&path).ok();
    Ok(())
}
