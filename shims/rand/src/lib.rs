//! A minimal, dependency-free stand-in for the `rand` crate (offline
//! build). `StdRng` is xoshiro256** seeded via splitmix64 — statistically
//! solid for workload generation and tests, deterministic under a seed
//! (which is what the paper's side-by-side methodology needs). The stream
//! differs from crates.io `rand`'s `StdRng`; nothing in this workspace
//! depends on the exact stream, only on determinism.

/// Source of raw random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from the full value domain (`Rng::gen`).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u8 {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` using the top 53 bits.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Integer types uniformly samplable within a span (drives `gen_range`).
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[start, start + span)` where `span` is the
    /// (wrapped) width; `span == 0` means the full domain.
    fn sample_span<R: RngCore + ?Sized>(rng: &mut R, start: Self, span: u64) -> Self;
    fn span_exclusive(start: Self, end: Self) -> u64;
    fn span_inclusive(start: Self, end: Self) -> u64;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_span<R: RngCore + ?Sized>(rng: &mut R, start: $t, span: u64) -> $t {
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                // Multiply-shift mapping (Lemire reduction without the
                // rejection step; bias < 2^-32 for the spans used here).
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                start.wrapping_add(hi as $t)
            }
            fn span_exclusive(start: $t, end: $t) -> u64 {
                end.wrapping_sub(start) as u64
            }
            fn span_inclusive(start: $t, end: $t) -> u64 {
                (end.wrapping_sub(start) as u64).wrapping_add(1)
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges samplable by `Rng::gen_range`. Exactly one (blanket) impl per
/// range shape, so `Range<{integer}>` unifies the literal's type with the
/// target type the way the real crate does.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "empty gen_range");
        T::sample_span(rng, self.start, T::span_exclusive(self.start, self.end))
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        assert!(start <= end, "empty gen_range");
        T::sample_span(rng, start, T::span_inclusive(start, end))
    }
}

/// The user-facing sampling interface (blanket-implemented for every
/// `RngCore`).
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p} out of range");
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** — the workspace's deterministic generator.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_bounds_hold() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: u64 = r.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: u8 = r.gen_range(0..100);
            assert!(w < 100);
            let x: u64 = r.gen_range(0..=5);
            assert!(x <= 5);
        }
        // Every value in a small range is eventually hit.
        let mut seen = [false; 10];
        for _ in 0..10_000 {
            seen[r.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn gen_f64_in_unit_interval_and_bool_rate() {
        let mut r = StdRng::seed_from_u64(7);
        let mut trues = 0;
        for _ in 0..10_000 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
            if r.gen_bool(0.3) {
                trues += 1;
            }
        }
        assert!((2_500..3_500).contains(&trues), "gen_bool(0.3) gave {trues}/10000");
    }
}
