//! A minimal, dependency-free stand-in for the `parking_lot` crate so the
//! workspace builds without network access. Implements the subset this
//! workspace uses — `Mutex` and `RwLock` with non-poisoning guards — on top
//! of `std::sync`. Poisoned std locks are recovered transparently: a panic
//! while holding a latch in this engine is already fatal to the run, and
//! tests that do panic (e.g. `should_panic` cases) must not wedge every
//! later lock acquisition.

use std::fmt;
use std::sync::TryLockError;

/// A mutual-exclusion lock with `parking_lot`'s panic-free API.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

pub struct MutexGuard<'a, T: ?Sized> {
    guard: std::sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        MutexGuard { guard }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(MutexGuard { guard }),
            Err(TryLockError::Poisoned(e)) => Some(MutexGuard { guard: e.into_inner() }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

/// A reader-writer lock with `parking_lot`'s panic-free API.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    guard: std::sync::RwLockReadGuard<'a, T>,
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    guard: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> RwLock<T> {
        RwLock { inner: std::sync::RwLock::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let guard = self.inner.read().unwrap_or_else(|e| e.into_inner());
        RwLockReadGuard { guard }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let guard = self.inner.write().unwrap_or_else(|e| e.into_inner());
        RwLockWriteGuard { guard }
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(guard) => Some(RwLockReadGuard { guard }),
            Err(TryLockError::Poisoned(e)) => Some(RwLockReadGuard { guard: e.into_inner() }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(guard) => Some(RwLockWriteGuard { guard }),
            Err(TryLockError::Poisoned(e)) => Some(RwLockWriteGuard { guard: e.into_inner() }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(g) => f.debug_struct("RwLock").field("data", &&*g).finish(),
            None => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert!(m.try_lock().is_some());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
    }

    #[test]
    fn rwlock_readers_share() {
        let l = RwLock::new(1);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 2);
        assert!(l.try_write().is_none());
        drop((a, b));
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        // parking_lot semantics: later lockers proceed.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
