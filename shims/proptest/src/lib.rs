//! A minimal, dependency-free stand-in for the `proptest` crate so the
//! workspace builds offline. Supports the subset the tests use:
//!
//! * `Strategy` with `prop_map`, tuple strategies (2–8 elements), integer
//!   ranges, `any::<T>()`, `Just`, `prop::collection::vec`
//! * `prop_oneof!`, `proptest! { #![proptest_config(...)] #[test] fn ... }`
//! * `prop_assert!` / `prop_assert_eq!`
//!
//! Cases are sampled from a fixed-seed deterministic RNG (reproducible CI);
//! there is **no shrinking** — a failing case panics with the assert message
//! and the case index. That trades debuggability for zero dependencies.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub mod strategy {
    use super::*;

    /// A source of random values of one type.
    pub trait Strategy {
        type Value;

        fn sample(&self, rng: &mut StdRng) -> Self::Value;

        /// Map sampled values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erase (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            (**self).sample(rng)
        }
    }

    /// `strategy.prop_map(f)`.
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice among boxed alternatives (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            let i = rng.gen_range(0..self.arms.len());
            self.arms[i].sample(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    /// Full-domain sampling for `any::<T>()`.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    macro_rules! impl_arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> $t {
                    // Truncation keeps the full value domain for each width.
                    rng.gen::<u64>() as $t
                }
            }
        )*};
    }

    impl_arbitrary_uint!(u8, u16, u32, u64, usize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut StdRng) -> bool {
            rng.gen()
        }
    }

    pub struct Any<T> {
        _marker: std::marker::PhantomData<fn() -> T>,
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// `any::<T>()`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any { _marker: std::marker::PhantomData }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::*;

    /// Length-range driven `Vec` strategy.
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(!len.is_empty(), "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod test_runner {
    /// Explicit case failure (what `prop_assert!` produces under the hood).
    #[derive(Clone, Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError(msg.into())
        }

        /// Real proptest's "discard this case" — treated as failure here
        /// (nothing in the workspace uses rejection sampling).
        pub fn reject(msg: impl Into<String>) -> TestCaseError {
            TestCaseError(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Runner knobs. Only `cases` matters here; the struct keeps the
    /// `..ProptestConfig::default()` construction pattern compiling.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
        /// Accepted and ignored (no shrinking in this stand-in).
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 64, max_shrink_iters: 0 }
        }
    }
}

/// Deterministic per-test RNG. The seed folds in the test name so distinct
/// properties explore distinct streams, yet every run is reproducible.
pub fn deterministic_rng(test_name: &str) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop, prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// The `prop::` namespace used by `prop::collection::vec(...)`.
pub mod prop {
    pub use crate::collection;
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                a, b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`: {}",
                a, b, format!($($fmt)+)
            )));
        }
    }};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ($cfg:expr;) => {};
    ($cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::deterministic_rng(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::sample(&$strat, &mut rng);)*
                let run = || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    Ok(())
                };
                // The case index is the reproduction handle (fixed seed, so
                // case N always receives the same inputs).
                if let Err(e) = run() {
                    panic!("proptest case {case}/{} failed: {e}", config.cases);
                }
            }
        }
        $crate::__proptest_items! { $cfg; $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, PartialEq)]
    enum Op {
        A(u8),
        B(u64),
    }

    fn op() -> impl Strategy<Value = Op> {
        prop_oneof![any::<u8>().prop_map(Op::A), (10u64..20).prop_map(Op::B),]
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn tuples_ranges_and_vecs(
            v in prop::collection::vec((0u64..50, any::<bool>()), 1..10),
            x in 5usize..9,
            ops in prop::collection::vec(op(), 0..8),
        ) {
            prop_assert!((5..9).contains(&x));
            prop_assert!(!v.is_empty() && v.len() < 10);
            for (k, _) in &v {
                prop_assert!(*k < 50, "key {} out of range", k);
            }
            for o in &ops {
                match o {
                    Op::A(_) => {}
                    Op::B(b) => prop_assert!((10..20).contains(b)),
                }
            }
            prop_assert_eq!(Just(7u8).sample(&mut crate::deterministic_rng("j")), 7u8);
        }
    }

    #[test]
    fn determinism_across_runs() {
        use crate::strategy::Strategy;
        let s = (0u64..1000, any::<u64>());
        let a: Vec<_> = {
            let mut r = crate::deterministic_rng("d");
            (0..10).map(|_| s.sample(&mut r)).collect()
        };
        let b: Vec<_> = {
            let mut r = crate::deterministic_rng("d");
            (0..10).map(|_| s.sample(&mut r)).collect()
        };
        assert_eq!(a, b);
    }
}
