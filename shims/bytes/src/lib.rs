//! A minimal, dependency-free stand-in for the `bytes` crate (offline
//! build). Provides `BytesMut` and the `Buf`/`BufMut` trait subset the
//! codec layer uses, with identical little-endian semantics.

/// Growable byte buffer (a thin wrapper over `Vec<u8>`).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut { buf: Vec::with_capacity(cap) }
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.buf.clone()
    }

    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }
}

impl From<BytesMut> for Vec<u8> {
    fn from(b: BytesMut) -> Vec<u8> {
        b.buf
    }
}

/// Read cursor over a byte source. Implemented for `&[u8]`, which advances
/// in place exactly like the real crate.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(
            self.len() >= dst.len(),
            "copy_to_slice: wanted {} bytes, {} remain",
            dst.len(),
            self.len()
        );
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

/// Write sink for little-endian primitives.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_primitives() {
        let mut b = BytesMut::new();
        b.put_u8(7);
        b.put_u16_le(0xBEEF);
        b.put_u32_le(0xDEAD_BEEF);
        b.put_u64_le(u64::MAX - 1);
        b.put_slice(b"xyz");
        let v = b.to_vec();
        let mut r: &[u8] = &v;
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16_le(), 0xBEEF);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), u64::MAX - 1);
        let mut tail = [0u8; 3];
        r.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xyz");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "copy_to_slice")]
    fn overread_panics() {
        let mut r: &[u8] = &[1];
        let mut d = [0u8; 2];
        r.copy_to_slice(&mut d);
    }
}
