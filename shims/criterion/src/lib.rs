//! A minimal, dependency-free stand-in for the `criterion` crate (offline
//! build). Implements the subset the micro benchmarks use: groups,
//! `bench_function`, `iter`, `iter_batched`, throughput annotation, and the
//! `criterion_group!`/`criterion_main!` macros. Measurement is a simple
//! calibrated wall-clock loop (median-free mean over a fixed budget) —
//! adequate for relative comparisons, not statistics.

use std::hint::black_box as bb;
use std::time::{Duration, Instant};

/// Re-export so user code can call `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    bb(x)
}

#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Per-target measurement budget.
const WARMUP: Duration = Duration::from_millis(50);
const MEASURE: Duration = Duration::from_millis(200);

pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 100 }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), throughput: None, _parent: self }
    }

    pub fn bench_function(&mut self, name: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        run_one(&name.into(), None, f);
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    pub fn sample_size(&mut self, n: usize) {
        self._parent.sample_size = n;
    }

    pub fn bench_function(&mut self, name: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        let full = format!("{}/{}", self.name, name.into());
        run_one(&full, self.throughput, f);
    }

    pub fn finish(self) {}
}

fn run_one(name: &str, throughput: Option<Throughput>, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher { total: Duration::ZERO, iters: 0, deadline: Instant::now() + WARMUP };
    f(&mut b); // warmup pass
    let mut b = Bencher { total: Duration::ZERO, iters: 0, deadline: Instant::now() + MEASURE };
    f(&mut b);
    let per_iter = if b.iters == 0 { Duration::ZERO } else { b.total / (b.iters as u32).max(1) };
    let rate = match throughput {
        Some(Throughput::Elements(n)) if per_iter > Duration::ZERO => {
            let per_sec = n as f64 / per_iter.as_secs_f64();
            format!("  {per_sec:>14.0} elem/s")
        }
        Some(Throughput::Bytes(n)) if per_iter > Duration::ZERO => {
            let per_sec = n as f64 / per_iter.as_secs_f64() / (1 << 20) as f64;
            format!("  {per_sec:>10.1} MiB/s")
        }
        _ => String::new(),
    };
    println!("{name:<48} {:>12.3?}/iter ({} iters){rate}", per_iter, b.iters);
}

pub struct Bencher {
    total: Duration,
    iters: u64,
    deadline: Instant,
}

impl Bencher {
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        while Instant::now() < self.deadline {
            let t = Instant::now();
            bb(routine());
            self.total += t.elapsed();
            self.iters += 1;
        }
    }

    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        while Instant::now() < self.deadline {
            let input = setup();
            let t = Instant::now();
            bb(routine(input));
            self.total += t.elapsed();
            self.iters += 1;
        }
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_surface_runs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(1));
        g.sample_size(10);
        g.bench_function("add", |b| b.iter(|| 1u64 + 1));
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
        c.bench_function("top", |b| b.iter(|| 2u64 * 2));
    }
}
