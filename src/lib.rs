//! Umbrella crate: re-exports the workspace's public surface so integration
//! tests and examples have one front door. See the per-crate docs for the
//! real content; `lr_core` is the top of the stack.

pub use lr_core::*;
